//! Arc Flags — the pruned-Dijkstra technique of Hilger et al. that the
//! paper's Appendix A surveys: "Arc Flags is a method similar to SILC in
//! the sense that it also imposes a grid on the road network. In the
//! preprocessing step, for each vertex v and each edge e incident to v,
//! Arc Flags tags e with the grid cells in which there is at least one
//! vertex v′ whose shortest path to v passes through e... a revised
//! version of Dijkstra's algorithm avoids visiting irrelevant edges."
//!
//! The implementation partitions the network with a `g × g` grid
//! (`g² ≤ 64` so a region set fits one machine word per arc), flags each
//! directed arc with the regions it serves, and answers queries with a
//! Dijkstra that only relaxes arcs whose flag for the target's region is
//! set. Appendix A reports the technique (like ALT) as dominated by CH;
//! the `appendix_a_alt` experiment binary family verifies that relation.
//!
//! # Example
//!
//! ```
//! use spq_synth::SynthParams;
//! use spq_arcflags::{ArcFlags, ArcFlagsParams};
//!
//! let net = spq_synth::generate(&SynthParams::with_target_vertices(400, 4));
//! let af = ArcFlags::build(&net, &ArcFlagsParams::default());
//! let mut q = af.query(&net);
//! let t = (net.num_nodes() - 1) as u32;
//! assert!(q.distance(0, t).is_some());
//! ```

use spq_dijkstra::{Dijkstra, SearchStats};
use spq_graph::grid::VertexGrid;
use spq_graph::heap::IndexedHeap;
use spq_graph::par;
use spq_graph::size::IndexSize;
use spq_graph::types::{Dist, NodeId, INFINITY, INVALID_NODE};
use spq_graph::RoadNetwork;

/// Arc Flags preprocessing parameters.
#[derive(Debug, Clone, Copy)]
pub struct ArcFlagsParams {
    /// Grid side; `grid²` regions must fit the 64-bit flag word.
    pub grid: u32,
}

impl Default for ArcFlagsParams {
    fn default() -> Self {
        ArcFlagsParams { grid: 8 }
    }
}

pub mod persist;

/// The Arc Flags index: one 64-bit region mask per directed arc.
pub struct ArcFlags {
    pub(crate) grid: VertexGrid,
    /// `flags[arc]` bit r set ⇔ the arc lies on a shortest path into
    /// region r.
    pub(crate) flags: Vec<u64>,
}

impl ArcFlags {
    /// Preprocesses `net`: one backward shortest-path sweep per region
    /// boundary vertex, flagging every tight arc, plus blanket flags for
    /// intra-region arcs.
    pub fn build(net: &RoadNetwork, params: &ArcFlagsParams) -> Self {
        assert!(
            params.grid >= 1 && params.grid * params.grid <= 64,
            "region count must fit the 64-bit flag word"
        );
        let grid = VertexGrid::build(net, params.grid);
        let n = net.num_nodes();
        let mut flags = vec![0u64; net.num_arcs()];

        // Every arc serves its head's region: a search for a target
        // co-located with the head may need the arc as the final hop.
        for u in 0..n as NodeId {
            for (e, v, _) in net.edges(u) {
                let rv = grid.cell_index_of(v);
                flags[e as usize] |= 1 << rv;
            }
        }

        // Boundary vertices: endpoints of arcs crossing a region border.
        let mut boundary: Vec<NodeId> = Vec::new();
        for u in 0..n as NodeId {
            let ru = grid.cell_index_of(u);
            if net.neighbors(u).any(|(v, _)| grid.cell_index_of(v) != ru) {
                boundary.push(u);
            }
        }

        // For each boundary vertex b of region R: flag every arc (u, v)
        // that is tight toward b (dist(u) == w + dist(v)) with R — such
        // arcs lie on a shortest path to b, hence into R. The sweeps are
        // independent and only OR bits in, so contiguous spans of the
        // boundary list fan out over the preprocessing worker pool
        // ([`spq_graph::par`]), each span accumulating into its own flag
        // word array; OR is commutative and associative, so the merged
        // flags match a sequential build bit for bit.
        let num_arcs = net.num_arcs();
        let span_flags = par::par_map_spans(boundary.len(), |span| {
            let mut sweep = Dijkstra::new(n);
            let mut local = vec![0u64; num_arcs];
            for &b in &boundary[span] {
                let region_bit = 1u64 << grid.cell_index_of(b);
                sweep.run(net, b);
                for u in 0..n as NodeId {
                    let du = sweep.distance(u).expect("connected network");
                    for (e, v, w) in net.edges(u) {
                        let dv = sweep.distance(v).expect("connected network");
                        if du == dv + w as Dist {
                            local[e as usize] |= region_bit;
                        }
                    }
                }
            }
            local
        });
        for local in span_flags {
            for (f, l) in flags.iter_mut().zip(local) {
                *f |= l;
            }
        }

        ArcFlags { grid, flags }
    }

    /// The region grid.
    pub fn grid(&self) -> &VertexGrid {
        &self.grid
    }

    /// Fraction of (arc, region) pairs that are flagged — the pruning
    /// power indicator (lower = faster queries).
    pub fn flag_density(&self) -> f64 {
        let regions = self.grid.frame().num_cells() as u32;
        let set: u64 = self
            .flags
            .iter()
            .map(|f| (f & mask_low(regions)).count_ones() as u64)
            .sum();
        set as f64 / (self.flags.len() as f64 * regions as f64)
    }

    /// Creates a query workspace.
    pub fn query<'a>(&'a self, net: &'a RoadNetwork) -> ArcFlagsQuery<'a> {
        ArcFlagsQuery::new(self, net)
    }
}

#[inline]
fn mask_low(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

impl IndexSize for ArcFlags {
    fn index_size_bytes(&self) -> usize {
        self.flags.len() * 8 + self.grid.index_size_bytes()
    }
}

/// Reusable Arc Flags query workspace: Dijkstra relaxing only arcs
/// flagged for the target's region.
pub struct ArcFlagsQuery<'a> {
    af: &'a ArcFlags,
    net: &'a RoadNetwork,
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
    reached_stamp: Vec<u32>,
    settled_stamp: Vec<u32>,
    version: u32,
    heap: IndexedHeap,
    budget: spq_graph::backend::QueryBudget,
    /// Statistics of the most recent query.
    pub stats: SearchStats,
}

impl<'a> ArcFlagsQuery<'a> {
    /// Creates a workspace over the index and its network.
    pub fn new(af: &'a ArcFlags, net: &'a RoadNetwork) -> Self {
        let n = net.num_nodes();
        ArcFlagsQuery {
            af,
            net,
            dist: vec![INFINITY; n],
            parent: vec![INVALID_NODE; n],
            reached_stamp: vec![0; n],
            settled_stamp: vec![0; n],
            version: 0,
            heap: IndexedHeap::new(n),
            budget: spq_graph::backend::QueryBudget::unlimited(),
            stats: SearchStats::default(),
        }
    }

    /// Installs the cancellation budget subsequent queries run under
    /// (one charge per settled vertex). The default is unlimited.
    pub fn set_budget(&mut self, budget: spq_graph::backend::QueryBudget) {
        self.budget = budget;
    }

    /// Whether a query since the last [`ArcFlagsQuery::set_budget`] was
    /// cut short by the budget (its `None` is an abort, not
    /// "unreachable").
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted()
    }

    /// Distance query.
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.search(s, t)
    }

    /// Shortest-path query.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        let d = self.search(s, t)?;
        let mut path = vec![t];
        let mut cur = t;
        while cur != s {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some((d, path))
    }

    fn search(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.reached_stamp.fill(0);
            self.settled_stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.stats = SearchStats::default();
        let target_bit = 1u64 << self.af.grid.cell_index_of(t);
        self.heap.clear();
        self.dist[s as usize] = 0;
        self.parent[s as usize] = INVALID_NODE;
        self.reached_stamp[s as usize] = version;
        self.heap.push_or_decrease(s, 0);
        while let Some((d, u)) = self.heap.pop_min() {
            if !self.budget.charge() {
                return None;
            }
            self.settled_stamp[u as usize] = version;
            self.stats.settled += 1;
            if u == t {
                return Some(d);
            }
            for (e, v, w) in self.net.edges(u) {
                if self.af.flags[e as usize] & target_bit == 0 {
                    continue; // the arc serves no shortest path into t's region
                }
                self.stats.relaxed += 1;
                let nd = d + w as Dist;
                let vi = v as usize;
                if self.reached_stamp[vi] != version || nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.parent[vi] = u;
                    self.reached_stamp[vi] = version;
                    self.heap.push_or_decrease(v, nd);
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// spq-serve integration: arc flags behind the unified backend interface.

impl spq_graph::backend::Backend for ArcFlags {
    fn backend_name(&self) -> &'static str {
        "ArcFlags"
    }

    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn spq_graph::backend::Session + 'a> {
        Box::new(self.query(net))
    }
}

impl spq_graph::backend::Session for ArcFlagsQuery<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        ArcFlagsQuery::distance(self, s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        ArcFlagsQuery::shortest_path(self, s, t)
    }

    fn set_budget(&mut self, budget: spq_graph::backend::QueryBudget) {
        ArcFlagsQuery::set_budget(self, budget);
    }

    fn interrupted(&self) -> bool {
        self.budget_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::{figure1, grid_graph};

    fn check_all_pairs(net: &RoadNetwork, params: &ArcFlagsParams) {
        let af = ArcFlags::build(net, params);
        let mut q = af.query(net);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(net, s);
            for t in 0..net.num_nodes() as NodeId {
                assert_eq!(q.distance(s, t), d.distance(t), "({s},{t})");
                let (pd, path) = q.shortest_path(s, t).unwrap();
                assert_eq!(Some(pd), d.distance(t));
                assert_eq!(net.path_length(&path), d.distance(t));
            }
        }
    }

    #[test]
    fn figure1_all_pairs_exact() {
        check_all_pairs(&figure1(), &ArcFlagsParams::default());
    }

    #[test]
    fn grid_all_pairs_exact() {
        check_all_pairs(&grid_graph(9, 6), &ArcFlagsParams { grid: 4 });
    }

    #[test]
    fn synthetic_random_pairs_exact() {
        let net = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(800, 23));
        let af = ArcFlags::build(&net, &ArcFlagsParams::default());
        let mut q = af.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as u64;
        let mut state = 5u64;
        for _ in 0..60 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(31);
            let s = ((state >> 33) % n) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(31);
            let t = ((state >> 33) % n) as NodeId;
            d.run_to_target(&net, s, t);
            assert_eq!(q.distance(s, t), d.distance(t), "({s},{t})");
        }
    }

    #[test]
    fn pruning_shrinks_far_searches() {
        let net = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(2000, 24));
        let af = ArcFlags::build(&net, &ArcFlagsParams::default());
        assert!(af.flag_density() < 0.7, "density {}", af.flag_density());
        let mut q = af.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        // A far pair: opposite bounding-box corners.
        let rect = net.bounding_rect();
        let corner = |x: i32, y: i32| {
            (0..net.num_nodes() as NodeId)
                .min_by_key(|&v| net.coord(v).linf(&spq_graph::geo::Point::new(x, y)))
                .unwrap()
        };
        let s = corner(rect.min_x, rect.min_y);
        let t = corner(rect.max_x, rect.max_y);
        q.distance(s, t);
        d.run_to_target(&net, s, t);
        assert!(
            q.stats.relaxed * 2 < d.stats.relaxed,
            "flags relaxed {} vs Dijkstra {}",
            q.stats.relaxed,
            d.stats.relaxed
        );
    }

    #[test]
    fn rejects_oversized_grids() {
        let g = figure1();
        let result = std::panic::catch_unwind(|| ArcFlags::build(&g, &ArcFlagsParams { grid: 9 }));
        assert!(result.is_err(), "81 regions must not fit 64 bits");
    }
}
