//! Binary persistence for Arc Flags indexes.
//!
//! Only the flag words and the grid resolution are stored; the vertex
//! grid is rebuilt deterministically from the network at load time. The
//! serialised bytes double as the determinism witness for parallel
//! builds (`tests/determinism.rs`).

use std::io::{self, Read, Write};

use spq_graph::binio::{self, IndexLoadError};
use spq_graph::grid::VertexGrid;
use spq_graph::RoadNetwork;

use crate::ArcFlags;

const MAGIC: &[u8; 4] = b"SPQF";
/// Version 2 wraps the payload in the checksummed container; version-1
/// files predate it and are refused at load (rebuild to migrate).
const VERSION: u32 = 2;

impl ArcFlags {
    /// Serialises the grid resolution and the per-arc flag words inside
    /// a checksummed container.
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        binio::write_u64(&mut body, self.grid.frame().g() as u64)?;
        binio::write_u64s(&mut body, &self.flags)?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Deserialises an index written by [`ArcFlags::write_binary`],
    /// rebuilding the vertex grid over `net` (the same network the index
    /// was built on). The checksum and shape invariants are verified
    /// before the index is returned.
    pub fn read_binary(net: &RoadNetwork, r: &mut impl Read) -> Result<ArcFlags, IndexLoadError> {
        let body = binio::read_checksummed(r, MAGIC, VERSION)?;
        let r = &mut &body[..];
        let g = binio::read_u64(r)?;
        if g == 0 || g * g > 64 {
            return Err(IndexLoadError::Corrupt(format!(
                "grid resolution {g} does not fit the 64-bit flag word"
            )));
        }
        let flags = binio::read_u64s(r)?;
        if flags.len() != net.num_arcs() {
            return Err(IndexLoadError::Corrupt(format!(
                "{} flag words for a network with {} arcs",
                flags.len(),
                net.num_arcs()
            )));
        }
        Ok(ArcFlags {
            grid: VertexGrid::build(net, g as u32),
            flags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArcFlagsParams;
    use spq_graph::toy::grid_graph;
    use spq_graph::types::NodeId;

    #[test]
    fn roundtrip_answers_identically() {
        let net = grid_graph(7, 5);
        let af = ArcFlags::build(&net, &ArcFlagsParams { grid: 4 });
        let mut buf = Vec::new();
        af.write_binary(&mut buf).unwrap();
        let af2 = ArcFlags::read_binary(&net, &mut &buf[..]).unwrap();
        assert_eq!(af.flags, af2.flags);
        let mut q1 = af.query(&net);
        let mut q2 = af2.query(&net);
        for s in 0..net.num_nodes() as NodeId {
            for t in 0..net.num_nodes() as NodeId {
                assert_eq!(q1.distance(s, t), q2.distance(s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn rejects_inconsistent_payloads() {
        let net = grid_graph(4, 4);
        let af = ArcFlags::build(&net, &ArcFlagsParams::default());
        let mut buf = Vec::new();
        af.write_binary(&mut buf).unwrap();
        buf[3] ^= 0xff;
        assert!(ArcFlags::read_binary(&net, &mut &buf[..]).is_err());
        // Flag count must match the network's arc count.
        let other = grid_graph(5, 5);
        let mut buf2 = Vec::new();
        af.write_binary(&mut buf2).unwrap();
        assert!(ArcFlags::read_binary(&other, &mut &buf2[..]).is_err());
    }
}
