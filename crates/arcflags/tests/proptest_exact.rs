//! Property: Arc Flags prune only arcs that no shortest path needs —
//! queries stay exact on arbitrary connected graphs and grids.

use proptest::prelude::*;
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::small_connected_network;
use spq_graph::types::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_on_arbitrary_graphs(net in small_connected_network(), grid in 1u32..8) {
        let af = ArcFlags::build(&net, &ArcFlagsParams { grid });
        let mut q = af.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(&net, s);
            for t in 0..net.num_nodes() as NodeId {
                prop_assert_eq!(q.distance(s, t), d.distance(t));
                let (pd, path) = q.shortest_path(s, t).unwrap();
                prop_assert_eq!(Some(pd), d.distance(t));
                prop_assert_eq!(net.path_length(&path), d.distance(t));
            }
        }
    }
}
