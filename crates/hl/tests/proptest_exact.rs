//! Property test: hub-labeling distances equal the Dijkstra oracle on
//! arbitrary connected networks — exhaustively, over every (s, t) pair.
//!
//! This is the labeling analogue of `tests/proptest_exactness.rs`: the
//! generator explores degenerate shapes (two-vertex paths, stars,
//! parallel-heavy multigraphs after dedup) that the curated toy graphs
//! never hit, and the label query must agree with the ground truth on
//! all of them.

use proptest::prelude::*;
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::{connected_network, NetworkStrategyParams};
use spq_graph::{NodeId, RoadNetwork};
use spq_hl::Hl;

fn small_network() -> impl Strategy<Value = RoadNetwork> {
    connected_network(NetworkStrategyParams {
        min_nodes: 2,
        max_nodes: 40,
        ..NetworkStrategyParams::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn labels_match_dijkstra_on_every_pair(net in small_network()) {
        let hl = Hl::build(&net);
        let mut oracle = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            oracle.run(&net, s);
            for t in 0..net.num_nodes() as NodeId {
                prop_assert_eq!(
                    hl.labels().distance(s, t),
                    oracle.distance(t),
                    "HL disagrees with Dijkstra on ({}, {})", s, t
                );
            }
        }
    }

    #[test]
    fn label_store_is_symmetric(net in small_network()) {
        // The network is undirected, so the merge of L(s) and L(t) must
        // be order-insensitive.
        let hl = Hl::build(&net);
        for s in 0..net.num_nodes() as NodeId {
            for t in s..net.num_nodes() as NodeId {
                prop_assert_eq!(hl.labels().distance(s, t), hl.labels().distance(t, s));
            }
        }
    }
}
