//! Property: HL's batched DISTANCES path (the dense scatter-scan) is
//! bit-identical to the pointwise merge-scan and to the Dijkstra oracle
//! on arbitrary connected networks, and a budget-interrupted batch
//! never fabricates an entry — every answered cell is exact, every
//! unanswered cell is `None`.

use proptest::prelude::*;
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::small_connected_network;
use spq_graph::backend::{Backend, QueryBudget};
use spq_graph::types::NodeId;
use spq_hl::Hl;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_distances_bit_identical_to_pointwise_and_oracle(net in small_connected_network()) {
        let hl = Hl::build(&net);
        let mut session = hl.session(&net);
        let mut oracle = Dijkstra::new(net.num_nodes());
        let all: Vec<NodeId> = (0..net.num_nodes() as NodeId).collect();
        let ragged: Vec<NodeId> = all.iter().copied().step_by(3).collect();
        for (sources, targets) in [(all.clone(), all.clone()), (ragged.clone(), all.clone())] {
            let mut out = Vec::new();
            session.distances(&sources, &targets, &mut out);
            prop_assert!(!session.interrupted());
            prop_assert_eq!(out.len(), sources.len() * targets.len());
            for (i, &s) in sources.iter().enumerate() {
                oracle.run(&net, s);
                for (j, &t) in targets.iter().enumerate() {
                    let cell = out[i * targets.len() + j];
                    prop_assert_eq!(cell, oracle.distance(t), "oracle ({}, {})", s, t);
                    prop_assert_eq!(cell, session.distance(s, t), "pointwise ({}, {})", s, t);
                }
            }
        }
    }

    #[test]
    fn interrupted_batch_fabricates_nothing(net in small_connected_network()) {
        let hl = Hl::build(&net);
        let mut session = hl.session(&net);
        let sources: Vec<NodeId> = (0..net.num_nodes() as NodeId).collect();
        let targets = sources.clone();
        if sources.len() < 2 {
            return;
        }
        // HL charges once per pair, so a mid-table cap answers a prefix
        // exactly and the rest None — never a wrong distance.
        let cap = (sources.len() * targets.len() / 2) as u64;
        session.set_budget(QueryBudget::unlimited().with_node_cap(cap));
        let mut out = Vec::new();
        session.distances(&sources, &targets, &mut out);
        prop_assert!(session.interrupted());
        prop_assert_eq!(out.len(), sources.len() * targets.len());
        let mut oracle = Dijkstra::new(net.num_nodes());
        for (i, &s) in sources.iter().enumerate() {
            oracle.run(&net, s);
            for (j, &t) in targets.iter().enumerate() {
                let k = i * targets.len() + j;
                if (k as u64) < cap {
                    prop_assert_eq!(out[k], oracle.distance(t), "answered prefix ({}, {})", s, t);
                } else {
                    prop_assert_eq!(out[k], None, "cell {} after the trip", k);
                }
            }
        }
    }
}
