//! [`Backend`] implementation for hub labeling.
//!
//! Distance queries go straight through the label store's merge-scan —
//! constant small cost, no search state at all. Shortest-*path* queries
//! need shortcut unpacking, which labels cannot do, so the session
//! keeps a [`ChQuery`] over the embedded hierarchy for them; HL path
//! queries therefore cost exactly what the `ch` backend's do.
//!
//! Budgets: a label scan is O(|L(s)| + |L(t)|) with no expansion to
//! bound, so a distance query charges its budget once — a tripped
//! budget (deadline passed, kill flag set) still aborts before the
//! scan, and the serving layer's `interrupted` contract holds.

use spq_ch::ChQuery;
use spq_graph::backend::{Backend, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

use crate::labels::{BatchScan, Hl, HubLabels};

/// Per-thread HL workspace: a borrowed label store, the CH query state
/// that answers path queries, and a lazily created batch scatter array
/// (O(n), only paid by sessions that actually serve dense batches).
pub struct HlSession<'a> {
    labels: &'a HubLabels,
    budget: QueryBudget,
    paths: ChQuery<'a>,
    batch: Option<BatchScan>,
}

impl Backend for Hl {
    fn backend_name(&self) -> &'static str {
        "HL"
    }

    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(HlSession {
            labels: self.labels(),
            budget: QueryBudget::unlimited(),
            paths: ChQuery::new(self.hierarchy()),
            batch: None,
        })
    }
}

impl Session for HlSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.budget.reset();
        if !self.budget.charge() {
            return None;
        }
        self.labels.distance(s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.paths.shortest_path(s, t)
    }

    fn distances(&mut self, sources: &[NodeId], targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        self.budget.reset();
        if sources.len() < 2 || targets.len() < 2 {
            // Degenerate rows/columns: the scatter never amortises, so
            // keep the plain merge-scan loop.
            out.clear();
            out.reserve(sources.len() * targets.len());
            for &s in sources {
                for &t in targets {
                    if !self.budget.charge() {
                        out.push(None);
                        continue;
                    }
                    out.push(self.labels.distance(s, t));
                }
            }
            return;
        }
        let batch = self
            .batch
            .get_or_insert_with(|| BatchScan::new(self.labels));
        batch.table_into(self.labels, sources, targets, &mut self.budget, out);
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.paths.set_budget(budget.clone());
        self.budget = budget;
    }

    fn interrupted(&self) -> bool {
        self.budget.exhausted() || self.paths.budget_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn backend_answers_both_query_kinds() {
        let g = figure1();
        let hl = Hl::build(&g);
        let backend: &dyn Backend = &hl;
        assert_eq!(backend.backend_name(), "HL");
        let mut session = backend.session(&g);
        assert_eq!(session.distance(2, 6), Some(6));
        let (d, path) = session.shortest_path(2, 6).expect("connected");
        assert_eq!(d, 6);
        assert_eq!(path.first(), Some(&2));
        assert_eq!(path.last(), Some(&6));
        assert!(!session.interrupted());

        let mut out = Vec::new();
        session.distances(&[2, 0], &[6, 2], &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], Some(6));
        assert_eq!(out[3], session.distance(0, 2));
    }

    #[test]
    fn killed_budget_interrupts_instead_of_answering_none() {
        let g = figure1();
        let hl = Hl::build(&g);
        let mut session = hl.session(&g);
        let kill = Arc::new(AtomicBool::new(true));
        // A pre-set kill flag with a zero node cap trips on the first
        // charge; the None answer must be flagged as interrupted.
        session.set_budget(
            QueryBudget::unlimited()
                .with_node_cap(0)
                .with_kill_flag(kill.clone()),
        );
        assert_eq!(session.distance(2, 6), None);
        assert!(session.interrupted());
        kill.store(false, Ordering::Relaxed);
        session.set_budget(QueryBudget::unlimited());
        assert_eq!(session.distance(2, 6), Some(6));
        assert!(!session.interrupted());
    }
}
