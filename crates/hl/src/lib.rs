//! Hub labeling (HL) — 2-hop labels derived from the CH contraction
//! order, the technique family that superseded every index in the
//! source paper for pure distance queries.
//!
//! The construction is the canonical "CH search spaces as labels" one
//! (Abraham et al., *Hierarchical Hub Labelings*): the label of a
//! vertex `v` is its pruned upward search space in the contraction
//! hierarchy — every vertex the stall-on-demand upward Dijkstra from
//! `v` settles, recorded as `(hub_rank, dist)`. For any pair `(s, t)`
//! the highest-ranked vertex of a shortest path appears in both labels
//! with its exact distance, so
//!
//! ```text
//! dist(s, t) = min over common hubs h of  L(s)[h] + L(t)[h]
//! ```
//!
//! Labels are sorted by hub rank and stored in one flat CSR-style
//! buffer, so a distance query is a single linear merge-scan of two
//! contiguous slices — no heap, no hash lookups, no per-query
//! allocation. That makes HL the distance-query speed ceiling of the
//! workspace: faster than the flat CH kernel (which still runs two
//! Dijkstra frontiers) on every bench network.
//!
//! The crate exposes three layers:
//!
//! * [`HubLabels`] — the label store, built deterministically in
//!   parallel from a [`ContractionHierarchy`]'s search graph
//!   (byte-identical at any thread count, like every other index in
//!   the workspace).
//! * [`Hl`] — the servable index: the labels plus the hierarchy they
//!   were derived from, so shortest-*path* queries (which need
//!   shortcut unpacking) are answered by the embedded CH while
//!   distance queries go through the labels.
//! * persistence — a checksummed `SPQH` container holding the label
//!   arrays and the embedded hierarchy
//!   ([`Hl::write_binary`]/[`Hl::read_binary`]).
//!
//! # Example
//!
//! ```
//! use spq_graph::toy::figure1;
//! use spq_hl::Hl;
//!
//! let g = figure1();
//! let hl = Hl::build(&g);
//! assert_eq!(hl.labels().distance(2, 6), Some(6)); // dist(v3, v7), paper §3.2
//! ```

pub mod backend;
pub mod labels;
pub mod persist;

pub use labels::{BatchScan, Hl, HubLabels};
