//! Label construction and the merge-scan distance kernel.
//!
//! Building runs two embarrassingly parallel passes over the vertices
//! (fanned out through [`spq_graph::par`], so the result is
//! byte-identical at any thread count):
//!
//! 1. **Search** — for each vertex `v`, the stall-on-demand upward
//!    Dijkstra over the flat rank-renumbered
//!    [`SearchGraph`](spq_ch::SearchGraph) collects `v`'s raw label:
//!    every settled `(hub_rank, dist)` pair, sorted by rank. Stalled
//!    vertices are excluded — stalling proves a shorter down-up path
//!    exists, so their entry could never win a merge.
//! 2. **Prune** — an entry `(h, d)` of `L(v)` survives only if the
//!    label query `min over common hubs of L(v) + L(h)` over the *raw*
//!    labels equals `d`. Raw labels are complete CH search spaces, so
//!    that query is the exact distance; dropping dominated entries is
//!    safe because the apex of a shortest path always carries its exact
//!    distance and is therefore never dropped.
//!
//! The pruned labels are flattened into one CSR-style buffer: `first`
//! offsets (indexed by rank) into parallel `hub`/`dist` arrays. A
//! distance query translates both endpoints to rank space, then
//! merge-scans the two sorted slices — O(|L(s)| + |L(t)|), allocation-
//! free, branch-predictable.

use spq_ch::{ContractionHierarchy, SearchGraph};
use spq_graph::backend::QueryBudget;
use spq_graph::heap::IndexedHeap;
use spq_graph::par;
use spq_graph::size::IndexSize;
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::RoadNetwork;

/// The flat 2-hop label store. Labels are keyed by contraction rank;
/// original ids are translated at the query boundary via `rank`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubLabels {
    /// Original id → rank (copied from the search graph so the store
    /// answers queries without borrowing the hierarchy).
    rank: Box<[u32]>,
    /// Label slice starts, indexed by rank (`first[r]..first[r + 1]`).
    first: Box<[u32]>,
    /// Hub ranks, strictly ascending within each label.
    hub: Box<[u32]>,
    /// Distance to each hub, parallel to `hub`.
    dist: Box<[Dist]>,
}

/// One direction-free upward-search workspace (the network is
/// undirected, so forward and backward labels coincide and one search
/// per vertex suffices). Reused across the vertices a build worker
/// processes; stamp-versioned so per-vertex reset is O(search space).
struct UpwardSearch {
    dist: Vec<Dist>,
    stamp: Vec<u32>,
    version: u32,
    heap: IndexedHeap,
}

impl UpwardSearch {
    fn new(n: usize) -> UpwardSearch {
        UpwardSearch {
            dist: vec![INFINITY; n],
            stamp: vec![0; n],
            version: 0,
            heap: IndexedHeap::new(n),
        }
    }

    #[inline]
    fn reached(&self, r: u32, version: u32) -> bool {
        self.stamp[r as usize] == version
    }

    /// The raw label of the vertex at rank `root`: its stall-on-demand
    /// upward search space, sorted by hub rank.
    fn raw_label(&mut self, sg: &SearchGraph, root: u32) -> Vec<(u32, Dist)> {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.heap.clear();
        self.dist[root as usize] = 0;
        self.stamp[root as usize] = version;
        self.heap.push_or_decrease(root, 0);

        let mut out: Vec<(u32, Dist)> = Vec::new();
        while let Some((d, u)) = self.heap.pop_min() {
            let edges = sg.up(u);
            // Stall-on-demand: a shorter route back down to u through a
            // higher-ranked vertex proves u's entry could never win a
            // merge, so it is neither recorded nor expanded.
            if edges.iter().any(|e| {
                self.reached(e.target, version)
                    && self.dist[e.target as usize] + (e.weight as Dist) < d
            }) {
                continue;
            }
            out.push((u, d));
            for e in edges {
                let nd = d + e.weight as Dist;
                let hi = e.target as usize;
                if self.stamp[hi] != version || nd < self.dist[hi] {
                    self.dist[hi] = nd;
                    self.stamp[hi] = version;
                    self.heap.push_or_decrease(e.target, nd);
                }
            }
        }
        // Settle order is by distance; labels merge by rank.
        out.sort_unstable_by_key(|&(h, _)| h);
        out
    }
}

/// Minimum of `a[i].1 + b[j].1` over shared hub ranks (the label query
/// over unflattened labels, used by the prune pass).
fn merge_min(a: &[(u32, Dist)], b: &[(u32, Dist)]) -> Dist {
    let (mut i, mut j) = (0, 0);
    let mut best = Dist::MAX;
    while i < a.len() && j < b.len() {
        let (ha, hb) = (a[i].0, b[j].0);
        if ha == hb {
            let d = a[i].1 + b[j].1;
            if d < best {
                best = d;
            }
            i += 1;
            j += 1;
        } else if ha < hb {
            i += 1;
        } else {
            j += 1;
        }
    }
    best
}

impl HubLabels {
    /// Builds the pruned labels from a hierarchy's search graph. Pure
    /// function of the hierarchy; parallel and sequential builds are
    /// byte-identical.
    pub fn build(ch: &ContractionHierarchy) -> HubLabels {
        let sg = ch.search_graph();
        let n = sg.num_nodes();

        let raw: Vec<Vec<(u32, Dist)>> = par::par_map_index(
            n,
            || UpwardSearch::new(n),
            |ws, r| ws.raw_label(sg, r as u32),
        );

        // Prune: keep (h, d) only when the raw-label query confirms d
        // is the exact distance to h. The raw labels stay immutable
        // for the whole pass, so pruning parallelises per vertex.
        let pruned: Vec<Vec<(u32, Dist)>> = par::par_map_index(
            n,
            || (),
            |_, r| {
                let lv = &raw[r];
                lv.iter()
                    .filter(|&&(h, d)| h == r as u32 || merge_min(lv, &raw[h as usize]) >= d)
                    .copied()
                    .collect()
            },
        );

        let total: usize = pruned.iter().map(Vec::len).sum();
        assert!(
            total <= u32::MAX as usize,
            "label buffer exceeds u32 offsets"
        );
        let mut first = Vec::with_capacity(n + 1);
        let mut hub = Vec::with_capacity(total);
        let mut dist = Vec::with_capacity(total);
        first.push(0u32);
        for label in &pruned {
            for &(h, d) in label {
                hub.push(h);
                dist.push(d);
            }
            first.push(hub.len() as u32);
        }

        let mut rank = vec![0u32; n];
        for (v, r) in rank.iter_mut().enumerate() {
            *r = sg.rank_of(v as NodeId);
        }

        HubLabels {
            rank: rank.into_boxed_slice(),
            first: first.into_boxed_slice(),
            hub: hub.into_boxed_slice(),
            dist: dist.into_boxed_slice(),
        }
    }

    /// Reassembles a label store from its persisted sections, verifying
    /// the structural invariants a well-formed store upholds (offset
    /// monotonicity, rank bijectivity, per-label sortedness, and the
    /// mandatory `(own rank, 0)` head entry). Semantic fidelity beyond
    /// that is the engine self-check's and the auditor's job.
    pub fn from_raw(
        rank: Vec<u32>,
        first: Vec<u32>,
        hub: Vec<u32>,
        dist: Vec<Dist>,
    ) -> Result<HubLabels, String> {
        let n = rank.len();
        if first.len() != n + 1 {
            return Err(format!(
                "offset array has {} entries for {n} vertices",
                first.len()
            ));
        }
        if first[0] != 0 || first[n] as usize != hub.len() || hub.len() != dist.len() {
            return Err("label sections disagree on the entry count".into());
        }
        let mut seen = vec![false; n];
        for &r in &rank {
            match seen.get_mut(r as usize) {
                Some(slot) if !*slot => *slot = true,
                _ => return Err("rank array is not a permutation".into()),
            }
        }
        for r in 0..n {
            let (lo, hi) = (first[r] as usize, first[r + 1] as usize);
            if lo > hi || hi > hub.len() {
                return Err("label offsets are not monotone".into());
            }
            let label = &hub[lo..hi];
            if label.first() != Some(&(r as u32)) || dist[lo] != 0 {
                return Err(format!("label of rank {r} does not start with (self, 0)"));
            }
            if label.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("label of rank {r} is not strictly ascending"));
            }
            if label.iter().any(|&h| h as usize >= n) {
                return Err(format!("label of rank {r} references an out-of-range hub"));
            }
        }
        Ok(HubLabels {
            rank: rank.into_boxed_slice(),
            first: first.into_boxed_slice(),
            hub: hub.into_boxed_slice(),
            dist: dist.into_boxed_slice(),
        })
    }

    /// Borrowed persistence sections: `(rank, first, hub, dist)`.
    pub(crate) fn sections(&self) -> (&[u32], &[u32], &[u32], &[Dist]) {
        (&self.rank, &self.first, &self.hub, &self.dist)
    }

    /// Number of labeled vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.rank.len()
    }

    /// Total label entries across all vertices.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.hub.len()
    }

    /// Mean label size (entries per vertex).
    pub fn avg_label_len(&self) -> f64 {
        self.num_entries() as f64 / self.num_nodes().max(1) as f64
    }

    /// Largest single label.
    pub fn max_label_len(&self) -> usize {
        self.first
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// The label slices of the vertex at rank `r`.
    #[inline]
    fn label(&self, r: u32) -> (&[u32], &[Dist]) {
        let (lo, hi) = (
            self.first[r as usize] as usize,
            self.first[r as usize + 1] as usize,
        );
        (&self.hub[lo..hi], &self.dist[lo..hi])
    }

    /// Distance query: one merge-scan of the two sorted label slices.
    /// `None` when the labels share no hub (`t` unreachable from `s`).
    #[inline]
    pub fn distance(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        let (ah, ad) = self.label(self.rank[s as usize]);
        let (bh, bd) = self.label(self.rank[t as usize]);
        let (mut i, mut j) = (0, 0);
        let mut best = Dist::MAX;
        while i < ah.len() && j < bh.len() {
            let (x, y) = (ah[i], bh[j]);
            if x == y {
                let d = ad[i] + bd[j];
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            } else if x < y {
                i += 1;
            } else {
                j += 1;
            }
        }
        (best != Dist::MAX).then_some(best)
    }
}

impl IndexSize for HubLabels {
    fn index_size_bytes(&self) -> usize {
        self.rank.len() * 4
            + self.first.len() * 4
            + self.hub.len() * 4
            + self.dist.len() * std::mem::size_of::<Dist>()
    }
}

/// Batch-table workspace: a dense rank-indexed scatter array.
///
/// A DISTANCES table re-reads each source label once per target when
/// every cell merge-scans. Scattering `L(s)` into a stamped dense array
/// once per row turns each cell into a single pass over `L(t)` with an
/// O(1) stamped lookup per hub — O(|L(s)| + T·|L(t)|) per row instead
/// of O(T·(|L(s)| + |L(t)|)). Both shapes take the minimum of
/// `d_s(h) + d_t(h)` over the same common-hub set in exact `u64`
/// arithmetic, so the batch path is bit-identical to the merge-scan.
///
/// The workspace is allocation-free after construction and stamp-
/// versioned so per-row reset is O(|L(s)|).
pub struct BatchScan {
    val: Vec<Dist>,
    stamp: Vec<u32>,
    version: u32,
}

impl BatchScan {
    /// Allocates a scatter array covering `labels`' vertex set.
    pub fn new(labels: &HubLabels) -> BatchScan {
        let n = labels.num_nodes();
        BatchScan {
            val: vec![0; n],
            stamp: vec![0; n],
            version: 0,
        }
    }

    /// Fills `out` with the `sources × targets` table in row-major
    /// order, `None` for unreachable pairs. The budget is charged once
    /// per pair in the same order as the pointwise loop; pairs after a
    /// trip are reported `None` (check the budget afterwards to tell
    /// "interrupted" from "unreachable").
    pub fn table_into(
        &mut self,
        labels: &HubLabels,
        sources: &[NodeId],
        targets: &[NodeId],
        budget: &mut QueryBudget,
        out: &mut Vec<Option<Dist>>,
    ) {
        out.clear();
        out.reserve(sources.len() * targets.len());
        for &s in sources {
            self.version = self.version.wrapping_add(1);
            if self.version == 0 {
                self.stamp.fill(0);
                self.version = 1;
            }
            let version = self.version;
            let (sh, sd) = labels.label(labels.rank[s as usize]);
            for (&h, &d) in sh.iter().zip(sd) {
                self.val[h as usize] = d;
                self.stamp[h as usize] = version;
            }
            for &t in targets {
                if !budget.charge() {
                    out.push(None);
                    continue;
                }
                let (th, td) = labels.label(labels.rank[t as usize]);
                let mut best = Dist::MAX;
                for (&h, &d) in th.iter().zip(td) {
                    if self.stamp[h as usize] == version {
                        let sum = self.val[h as usize] + d;
                        if sum < best {
                            best = sum;
                        }
                    }
                }
                out.push((best != Dist::MAX).then_some(best));
            }
        }
    }
}

/// The servable hub-labeling index: the labels plus the hierarchy they
/// were derived from. Distance queries never touch the hierarchy;
/// shortest-path queries (which must unpack shortcuts) run on the
/// embedded CH, exactly as fast as the `ch` backend's.
#[derive(Debug, Clone)]
pub struct Hl {
    ch: ContractionHierarchy,
    labels: HubLabels,
}

impl Hl {
    /// Contracts `net` and labels the resulting hierarchy.
    pub fn build(net: &RoadNetwork) -> Hl {
        Hl::from_ch(ContractionHierarchy::build(net))
    }

    /// Labels an existing hierarchy (reuses a CH another backend or a
    /// persisted file already paid for).
    pub fn from_ch(ch: ContractionHierarchy) -> Hl {
        let labels = HubLabels::build(&ch);
        Hl { ch, labels }
    }

    /// Reassembles from persisted parts (the labels must describe
    /// `ch`'s vertex set).
    pub(crate) fn from_parts(ch: ContractionHierarchy, labels: HubLabels) -> Result<Hl, String> {
        if ch.num_nodes() != labels.num_nodes() {
            return Err(format!(
                "labels cover {} vertices but the hierarchy has {}",
                labels.num_nodes(),
                ch.num_nodes()
            ));
        }
        Ok(Hl { ch, labels })
    }

    /// The label store.
    pub fn labels(&self) -> &HubLabels {
        &self.labels
    }

    /// The hierarchy the labels were derived from.
    pub fn hierarchy(&self) -> &ContractionHierarchy {
        &self.ch
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.labels.num_nodes()
    }
}

impl IndexSize for Hl {
    fn index_size_bytes(&self) -> usize {
        self.labels.index_size_bytes() + self.ch.index_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};

    fn check_all_pairs(g: &RoadNetwork) {
        let hl = Hl::build(g);
        let mut reference = Dijkstra::new(g.num_nodes());
        for s in 0..g.num_nodes() as NodeId {
            reference.run(g, s);
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(
                    hl.labels().distance(s, t),
                    reference.distance(t),
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn figure1_worked_example() {
        let g = figure1();
        let hl = Hl::build(&g);
        assert_eq!(hl.labels().distance(2, 6), Some(6)); // §3.2: dist(v3, v7)
        assert_eq!(hl.labels().distance(0, 0), Some(0));
        check_all_pairs(&g);
    }

    #[test]
    fn grid_all_pairs_exact() {
        check_all_pairs(&grid_graph(7, 5));
    }

    #[test]
    fn synthetic_network_all_pairs_exact() {
        let g = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(400, 3));
        let hl = Hl::build(&g);
        let mut reference = Dijkstra::new(g.num_nodes());
        let n = g.num_nodes() as NodeId;
        for s in (0..n).step_by(7) {
            reference.run(&g, s);
            for t in 0..n {
                assert_eq!(
                    hl.labels().distance(s, t),
                    reference.distance(t),
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn labels_start_with_self_and_ascend() {
        let g = grid_graph(6, 6);
        let hl = Hl::build(&g);
        let labels = hl.labels();
        for r in 0..labels.num_nodes() as u32 {
            let (hubs, dists) = labels.label(r);
            assert_eq!(hubs.first(), Some(&r), "rank {r} must be its own first hub");
            assert_eq!(dists[0], 0);
            assert!(hubs.windows(2).all(|w| w[0] < w[1]), "rank {r} not sorted");
            assert!(hubs.iter().all(|&h| h >= r), "upward labels only");
        }
        assert!(labels.avg_label_len() >= 1.0);
        assert!(labels.max_label_len() >= 1);
    }

    #[test]
    fn pruning_never_grows_labels_beyond_the_search_space() {
        // The pruned store must answer identically to the raw search
        // spaces while holding no more entries.
        let g = grid_graph(5, 8);
        let ch = ContractionHierarchy::build(&g);
        let sg = ch.search_graph();
        let n = sg.num_nodes();
        let mut ws = UpwardSearch::new(n);
        let raw_total: usize = (0..n as u32).map(|r| ws.raw_label(sg, r).len()).sum();
        let labels = HubLabels::build(&ch);
        assert!(labels.num_entries() <= raw_total);
        check_all_pairs(&g);
    }

    #[test]
    fn from_raw_rejects_structural_garbage() {
        let g = figure1();
        let hl = Hl::build(&g);
        let (rank, first, hub, dist) = hl.labels().sections();
        let ok = HubLabels::from_raw(rank.to_vec(), first.to_vec(), hub.to_vec(), dist.to_vec())
            .expect("clean sections reassemble");
        assert_eq!(&ok, hl.labels());

        // Broken permutation.
        let mut bad = rank.to_vec();
        bad[0] = bad[1];
        assert!(
            HubLabels::from_raw(bad, first.to_vec(), hub.to_vec(), dist.to_vec())
                .unwrap_err()
                .contains("permutation")
        );
        // Non-monotone offsets.
        let mut bad = first.to_vec();
        bad[1] = bad[2] + 1;
        assert!(HubLabels::from_raw(rank.to_vec(), bad, hub.to_vec(), dist.to_vec()).is_err());
        // A label no longer headed by (self, 0).
        let mut bad = dist.to_vec();
        bad[0] = 5;
        assert!(
            HubLabels::from_raw(rank.to_vec(), first.to_vec(), hub.to_vec(), bad)
                .unwrap_err()
                .contains("(self, 0)")
        );
        // Out-of-range hub.
        let mut bad = hub.to_vec();
        let last = bad.len() - 1;
        bad[last] = u32::MAX;
        assert!(HubLabels::from_raw(rank.to_vec(), first.to_vec(), bad, dist.to_vec()).is_err());
    }

    #[test]
    fn batch_scan_matches_merge_scan() {
        let g = grid_graph(6, 7);
        let hl = Hl::build(&g);
        let labels = hl.labels();
        let sources: Vec<NodeId> = (0..g.num_nodes() as NodeId).step_by(3).collect();
        let targets: Vec<NodeId> = (0..g.num_nodes() as NodeId).step_by(5).collect();
        let mut ws = BatchScan::new(labels);
        let mut budget = QueryBudget::unlimited();
        let mut out = Vec::new();
        ws.table_into(labels, &sources, &targets, &mut budget, &mut out);
        assert_eq!(out.len(), sources.len() * targets.len());
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    out[i * targets.len() + j],
                    labels.distance(s, t),
                    "({s},{t})"
                );
            }
        }
        // Workspace reuse across tables stays clean.
        ws.table_into(labels, &targets, &sources, &mut budget, &mut out);
        for (i, &s) in targets.iter().enumerate() {
            for (j, &t) in sources.iter().enumerate() {
                assert_eq!(
                    out[i * sources.len() + j],
                    labels.distance(s, t),
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn batch_scan_budget_trip_answers_none_from_the_trip_on() {
        let g = grid_graph(4, 4);
        let hl = Hl::build(&g);
        let labels = hl.labels();
        let sources: Vec<NodeId> = vec![0, 5, 9];
        let targets: Vec<NodeId> = vec![1, 6, 11, 15];
        let mut ws = BatchScan::new(labels);
        let mut budget = QueryBudget::unlimited().with_node_cap(5);
        let mut out = Vec::new();
        ws.table_into(labels, &sources, &targets, &mut budget, &mut out);
        assert!(budget.exhausted());
        assert_eq!(out.len(), sources.len() * targets.len());
        // The first five pairs were answered (and correctly); the rest
        // are None — never a fabricated distance.
        for (k, cell) in out.iter().enumerate() {
            let (s, t) = (sources[k / targets.len()], targets[k % targets.len()]);
            if k < 5 {
                assert_eq!(*cell, labels.distance(s, t), "pair {k}");
            } else {
                assert_eq!(*cell, None, "pair {k} after the trip");
            }
        }
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        let g = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(300, 9));
        let ch = ContractionHierarchy::build(&g);
        let sequential = par::with_threads(1, || HubLabels::build(&ch));
        for threads in [2, 4] {
            let parallel = par::with_threads(threads, || HubLabels::build(&ch));
            assert_eq!(parallel, sequential, "{threads}-thread build differs");
        }
    }
}
