//! Binary persistence for the hub-labeling index.
//!
//! Label construction dominates HL's cost (it runs one pruned upward
//! search per vertex plus a pruning pass), so serving restarts load a
//! prebuilt `SPQH` container instead of re-labeling. The container
//! holds the four label sections plus the embedded hierarchy's own
//! `SPQC` container verbatim — the hierarchy keeps its format evolution
//! (and its structural cross-checks) without this crate re-encoding it.

use std::io::{self, Read, Write};

use spq_ch::ContractionHierarchy;
use spq_graph::binio::{self, IndexLoadError};

use crate::labels::{Hl, HubLabels};

const MAGIC: &[u8; 4] = b"SPQH";
const VERSION: u32 = 1;

impl Hl {
    /// Serialises the labels and the embedded hierarchy inside one
    /// checksummed container.
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        let (rank, first, hub, dist) = self.labels().sections();
        binio::write_u32s(&mut body, rank)?;
        binio::write_u32s(&mut body, first)?;
        binio::write_u32s(&mut body, hub)?;
        binio::write_u64s(&mut body, dist)?;
        let mut ch_bytes = Vec::new();
        self.hierarchy().write_binary(&mut ch_bytes)?;
        binio::write_u8s(&mut body, &ch_bytes)?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Deserialises an index written by [`Hl::write_binary`], verifying
    /// the container checksum, the label store's structural invariants
    /// ([`HubLabels::from_raw`]), and the embedded hierarchy's own
    /// container before returning it.
    pub fn read_binary(r: &mut impl Read) -> Result<Hl, IndexLoadError> {
        let (_, body) = binio::read_checksummed_versioned(r, MAGIC, VERSION, VERSION)?;
        let r = &mut &body[..];
        let rank = binio::read_u32s(r)?;
        let first = binio::read_u32s(r)?;
        let hub = binio::read_u32s(r)?;
        let dist = binio::read_u64s(r)?;
        let labels =
            HubLabels::from_raw(rank, first, hub, dist).map_err(IndexLoadError::Corrupt)?;
        let ch_bytes = binio::read_u8s(r)?;
        let ch = ContractionHierarchy::read_binary(&mut &ch_bytes[..])
            .map_err(|e| IndexLoadError::Corrupt(format!("embedded hierarchy: {e}")))?;
        Hl::from_parts(ch, labels).map_err(IndexLoadError::Corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::{figure1, grid_graph};
    use spq_graph::types::NodeId;

    #[test]
    fn roundtrip_answers_identically() {
        for g in [figure1(), grid_graph(6, 8)] {
            let hl = Hl::build(&g);
            let mut buf = Vec::new();
            hl.write_binary(&mut buf).unwrap();
            let hl2 = Hl::read_binary(&mut &buf[..]).unwrap();
            assert_eq!(hl2.labels(), hl.labels());
            for s in 0..g.num_nodes() as NodeId {
                for t in 0..g.num_nodes() as NodeId {
                    assert_eq!(hl2.labels().distance(s, t), hl.labels().distance(s, t));
                }
            }
            // Write → read → write is byte-stable.
            let mut buf2 = Vec::new();
            hl2.write_binary(&mut buf2).unwrap();
            assert_eq!(buf2, buf);
        }
    }

    #[test]
    fn rejects_invalid_payloads() {
        let g = figure1();
        let hl = Hl::build(&g);
        let mut buf = Vec::new();
        hl.write_binary(&mut buf).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[2] ^= 0xff;
        assert!(matches!(
            Hl::read_binary(&mut &bad_magic[..]),
            Err(IndexLoadError::BadMagic { .. })
        ));

        let mut truncated = buf.clone();
        truncated.truncate(truncated.len() - 11);
        assert!(matches!(
            Hl::read_binary(&mut &truncated[..]),
            Err(IndexLoadError::Truncated { .. })
        ));

        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            Hl::read_binary(&mut &flipped[..]),
            Err(IndexLoadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_future_versions() {
        // A version-2 container does not exist yet; a reader must refuse
        // it rather than misinterpret its body.
        let g = figure1();
        let hl = Hl::build(&g);
        let mut buf = Vec::new();
        hl.write_binary(&mut buf).unwrap();
        // Reconstruct the body and re-pack it under a higher version.
        let (_, body) =
            binio::read_checksummed_versioned(&mut &buf[..], MAGIC, VERSION, VERSION).unwrap();
        let mut future = Vec::new();
        binio::write_checksummed(&mut future, MAGIC, VERSION + 1, &body).unwrap();
        assert!(Hl::read_binary(&mut &future[..]).is_err());
    }

    /// Structurally broken label sections are rejected as `Corrupt` even
    /// when the container checksum is valid (the checksum is recomputed
    /// to isolate the semantic check).
    #[test]
    fn rejects_tampered_label_sections() {
        let g = grid_graph(4, 4);
        let hl = Hl::build(&g);
        let (rank, first, hub, dist) = hl.labels().sections();

        let mut bad_rank = rank.to_vec();
        bad_rank.swap(0, 1);
        bad_rank[0] = bad_rank[1]; // duplicate → not a permutation
        let mut body = Vec::new();
        binio::write_u32s(&mut body, &bad_rank).unwrap();
        binio::write_u32s(&mut body, first).unwrap();
        binio::write_u32s(&mut body, hub).unwrap();
        binio::write_u64s(&mut body, dist).unwrap();
        let mut ch_bytes = Vec::new();
        hl.hierarchy().write_binary(&mut ch_bytes).unwrap();
        binio::write_u8s(&mut body, &ch_bytes).unwrap();
        let mut tampered = Vec::new();
        binio::write_checksummed(&mut tampered, MAGIC, VERSION, &body).unwrap();
        let err = Hl::read_binary(&mut &tampered[..]).unwrap_err();
        assert!(
            matches!(err, IndexLoadError::Corrupt(ref m) if m.contains("permutation")),
            "got: {err}"
        );
    }

    /// A corrupted *embedded hierarchy* is surfaced with its own error
    /// context, not silently accepted.
    #[test]
    fn rejects_corrupt_embedded_hierarchy() {
        let g = figure1();
        let hl = Hl::build(&g);
        let (rank, first, hub, dist) = hl.labels().sections();
        let mut ch_bytes = Vec::new();
        hl.hierarchy().write_binary(&mut ch_bytes).unwrap();
        let mid = ch_bytes.len() / 2;
        ch_bytes[mid] ^= 0x40;
        let mut body = Vec::new();
        binio::write_u32s(&mut body, rank).unwrap();
        binio::write_u32s(&mut body, first).unwrap();
        binio::write_u32s(&mut body, hub).unwrap();
        binio::write_u64s(&mut body, dist).unwrap();
        binio::write_u8s(&mut body, &ch_bytes).unwrap();
        let mut tampered = Vec::new();
        binio::write_checksummed(&mut tampered, MAGIC, VERSION, &body).unwrap();
        let err = Hl::read_binary(&mut &tampered[..]).unwrap_err();
        assert!(
            matches!(err, IndexLoadError::Corrupt(ref m) if m.contains("embedded hierarchy")),
            "got: {err}"
        );
    }
}
