//! The jittered-grid road-network generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spq_graph::geo::Point;
use spq_graph::{GraphBuilder, RoadNetwork, Weight};

/// Parameters of the synthetic generator.
///
/// The defaults are tuned so that the produced networks match the paper's
/// datasets in the statistics the techniques care about: average degree
/// ≈ 2.4 (Table 1's arc/vertex ratio), bounded maximum degree, one
/// connected component, and a two-tier speed hierarchy.
#[derive(Debug, Clone)]
pub struct SynthParams {
    /// Grid columns before dropping vertices.
    pub cols: u32,
    /// Grid rows before dropping vertices.
    pub rows: u32,
    /// Probability that a lattice site has no vertex (models water,
    /// parks, unbuilt land). Creates irregular boundaries and holes.
    pub drop_vertex_prob: f64,
    /// Probability that a lattice edge between two surviving neighbours
    /// is absent. Brings the average degree down from 4 to road-network
    /// levels and makes shortest paths wiggle.
    pub drop_edge_prob: f64,
    /// Probability of a diagonal shortcut within a lattice square.
    pub diagonal_prob: f64,
    /// Every `highway_period`-th row and column is a highway (0 disables
    /// highways entirely).
    pub highway_period: u32,
    /// Travel speed on highways relative to local roads (> 1 makes
    /// highways attractive for long-distance routing).
    pub highway_speedup: f64,
    /// Coordinate spacing between adjacent lattice sites.
    pub spacing: u32,
    /// Maximum coordinate jitter applied to each vertex, as a fraction of
    /// `spacing` (keeps the embedding irregular but near-planar).
    pub jitter: f64,
    /// Number of dense "city" cores. Real road networks are far from
    /// uniform: urban areas are orders of magnitude denser than rural
    /// ones, which is what makes the paper's nearest query classes (Q1,
    /// Q2 — L∞ below extent/512) non-empty. Each city overlays a refined
    /// lattice patch and links it to the base network.
    pub city_count: u32,
    /// Side length of a city patch, in refined lattice sites.
    pub city_side: u32,
    /// Refinement factor: city lattice spacing is `spacing / city_refine`.
    pub city_refine: u32,
    /// RNG seed; equal parameters and seed give identical networks.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            cols: 32,
            rows: 32,
            drop_vertex_prob: 0.06,
            drop_edge_prob: 0.32,
            diagonal_prob: 0.05,
            highway_period: 8,
            highway_speedup: 3.0,
            spacing: 1000,
            jitter: 0.3,
            city_count: 3,
            city_side: 12,
            city_refine: 12,
            seed: 0x5eed_0001,
        }
    }
}

impl SynthParams {
    /// Parameters for a network of roughly `target_vertices` vertices,
    /// using a 4:3 aspect ratio like a typical state extract. City count
    /// grows with size so the urban fraction stays near 15%.
    pub fn with_target_vertices(target_vertices: usize, seed: u64) -> Self {
        let defaults = SynthParams::default();
        let survive = 1.0 - defaults.drop_vertex_prob;
        let urban_budget = target_vertices as f64 * 0.15;
        let per_full_city = (defaults.city_side * defaults.city_side) as f64 * survive;
        let city_count = ((urban_budget / per_full_city).round() as u32).max(1);
        // Shrink the city patches when the budget cannot fill full-size
        // ones (tiny smoke datasets).
        let city_side = ((urban_budget / city_count as f64 / survive).sqrt().round() as u32)
            .clamp(4, defaults.city_side);
        let per_city = (city_side * city_side) as f64 * survive;
        let base_target = (target_vertices as f64 - city_count as f64 * per_city).max(per_city);
        // Largest-component extraction plus vertex dropping removes a
        // further few percent; 0.90 keeps the expectation centred.
        let area = base_target / (1.0 - defaults.drop_vertex_prob) / 0.90;
        let rows = (area * 3.0 / 4.0).sqrt().round().max(2.0) as u32;
        let cols = (area / rows as f64).round().max(2.0) as u32;
        SynthParams {
            cols,
            rows,
            city_count,
            city_side,
            seed,
            ..defaults
        }
    }
}

/// Generates a connected synthetic road network.
///
/// The construction: place a `cols × rows` point lattice with jitter, drop
/// sites and lattice edges at the configured rates, add occasional
/// diagonals, assign travel-time weights (Euclidean length divided by the
/// road-class speed), and finally keep the largest connected component.
/// Weights are at least 1, so all shortest paths are strictly positive
/// and the canonical-path machinery in `spq-dijkstra` applies.
pub fn generate(params: &SynthParams) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let cols = params.cols.max(2);
    let rows = params.rows.max(2);
    let spacing = params.spacing.max(2) as f64;
    let jitter_amp = (params.jitter.clamp(0.0, 0.45) * spacing) as i32;

    let mut b = GraphBuilder::with_capacity((cols * rows) as usize, (2 * cols * rows) as usize);
    let mut site_id = vec![u32::MAX; (cols * rows) as usize];
    let mut coord = Vec::with_capacity((cols * rows) as usize);
    for r in 0..rows {
        for c in 0..cols {
            if rng.random::<f64>() < params.drop_vertex_prob {
                continue;
            }
            let jx = if jitter_amp > 0 {
                rng.random_range(-jitter_amp..=jitter_amp)
            } else {
                0
            };
            let jy = if jitter_amp > 0 {
                rng.random_range(-jitter_amp..=jitter_amp)
            } else {
                0
            };
            let p = Point::new(
                (c as f64 * spacing) as i32 + jx,
                (r as f64 * spacing) as i32 + jy,
            );
            site_id[(r * cols + c) as usize] = b.add_node(p);
            coord.push(p);
        }
    }

    // Road class of a lattice line: 0 = local street, 1 = highway,
    // 2 = freeway (every fourth highway). The two-tier hierarchy mirrors
    // real travel-time networks, where long-distance shortest paths
    // funnel onto a sparse fast sub-network — the property CH and TNR
    // exploit (paper SS1).
    let line_class = |i: u32| -> u8 {
        if params.highway_period > 1 && i % params.highway_period == 0 {
            if i % (4 * params.highway_period) == 0 {
                2
            } else {
                1
            }
        } else {
            0
        }
    };
    // Travel time of a road segment between two embedded points.
    let travel_time_class = |a: Point, bpt: Point, class: u8| -> Weight {
        let euclid = (a.dist2(&bpt) as f64).sqrt();
        let speed = match class {
            0 => 1.0,
            1 => params.highway_speedup,
            _ => 2.0 * params.highway_speedup,
        };
        // Divide by spacing so weights stay in the hundreds; DIMACS
        // travel times are similar magnitudes.
        let t = euclid / speed * 256.0 / spacing;
        (t.round() as Weight).max(1)
    };
    let travel_time = |a: Point, bpt: Point, highway: bool| -> Weight {
        travel_time_class(a, bpt, if highway { 1 } else { 0 })
    };

    let site = |r: u32, c: u32| site_id[(r * cols + c) as usize];
    for r in 0..rows {
        for c in 0..cols {
            let u = site(r, c);
            if u == u32::MAX {
                continue;
            }
            // East edge. Highways are never dropped: a broken fast road
            // would destroy the funnelling that makes them highways.
            if c + 1 < cols {
                let v = site(r, c + 1);
                let class = line_class(r);
                if v != u32::MAX && (class > 0 || rng.random::<f64>() >= params.drop_edge_prob) {
                    b.add_edge(
                        u,
                        v,
                        travel_time_class(coord[u as usize], coord[v as usize], class),
                    );
                }
            }
            // South edge.
            if r + 1 < rows {
                let v = site(r + 1, c);
                let class = line_class(c);
                if v != u32::MAX && (class > 0 || rng.random::<f64>() >= params.drop_edge_prob) {
                    b.add_edge(
                        u,
                        v,
                        travel_time_class(coord[u as usize], coord[v as usize], class),
                    );
                }
            }
            // Occasional diagonal (local roads only).
            if c + 1 < cols && r + 1 < rows {
                let v = site(r + 1, c + 1);
                if v != u32::MAX && rng.random::<f64>() < params.diagonal_prob {
                    b.add_edge(
                        u,
                        v,
                        travel_time(coord[u as usize], coord[v as usize], false),
                    );
                }
            }
        }
    }

    // City cores: refined lattice patches linked into the base network.
    if params.city_refine > 1 && params.city_side > 1 {
        let fine_spacing = spacing / params.city_refine as f64;
        let fine_jitter = (params.jitter.clamp(0.0, 0.45) * fine_spacing) as i32;
        let side = params.city_side;
        for _ in 0..params.city_count {
            // City centre at a random base site (biased off the border).
            let cr = rng.random_range(1..rows.saturating_sub(1).max(2));
            let cc = rng.random_range(1..cols.saturating_sub(1).max(2));
            let origin_x = cc as f64 * spacing - side as f64 / 2.0 * fine_spacing;
            let origin_y = cr as f64 * spacing - side as f64 / 2.0 * fine_spacing;
            let mut city_id = vec![u32::MAX; (side * side) as usize];
            for fr in 0..side {
                for fc in 0..side {
                    if rng.random::<f64>() < params.drop_vertex_prob {
                        continue;
                    }
                    let jx = if fine_jitter > 0 {
                        rng.random_range(-fine_jitter..=fine_jitter)
                    } else {
                        0
                    };
                    let jy = if fine_jitter > 0 {
                        rng.random_range(-fine_jitter..=fine_jitter)
                    } else {
                        0
                    };
                    let p = Point::new(
                        (origin_x + fc as f64 * fine_spacing) as i32 + jx,
                        (origin_y + fr as f64 * fine_spacing) as i32 + jy,
                    );
                    city_id[(fr * side + fc) as usize] = b.add_node(p);
                    coord.push(p);
                }
            }
            // Dense street grid inside the city.
            for fr in 0..side {
                for fc in 0..side {
                    let u = city_id[(fr * side + fc) as usize];
                    if u == u32::MAX {
                        continue;
                    }
                    if fc + 1 < side {
                        let v = city_id[(fr * side + fc + 1) as usize];
                        if v != u32::MAX && rng.random::<f64>() >= params.drop_edge_prob {
                            b.add_edge(
                                u,
                                v,
                                travel_time(coord[u as usize], coord[v as usize], false),
                            );
                        }
                    }
                    if fr + 1 < side {
                        let v = city_id[((fr + 1) * side + fc) as usize];
                        if v != u32::MAX && rng.random::<f64>() >= params.drop_edge_prob {
                            b.add_edge(
                                u,
                                v,
                                travel_time(coord[u as usize], coord[v as usize], false),
                            );
                        }
                    }
                }
            }
            // Arterial links: tie the city corners and centre into the
            // nearest surviving base-lattice vertices.
            let anchors = [
                (0u32, 0u32),
                (0, side - 1),
                (side - 1, 0),
                (side - 1, side - 1),
                (side / 2, side / 2),
            ];
            for (fr, fc) in anchors {
                let u = city_id[(fr * side + fc) as usize];
                if u == u32::MAX {
                    continue;
                }
                let pu = coord[u as usize];
                // Scan base sites within two lattice steps of the centre.
                let mut best: Option<(u64, u32)> = None;
                for dr in -2i64..=2 {
                    for dc in -2i64..=2 {
                        let r = cr as i64 + dr;
                        let c = cc as i64 + dc;
                        if r < 0 || c < 0 || r >= rows as i64 || c >= cols as i64 {
                            continue;
                        }
                        let v = site_id[(r as u32 * cols + c as u32) as usize];
                        if v == u32::MAX {
                            continue;
                        }
                        let d2 = pu.dist2(&coord[v as usize]);
                        if best.map_or(true, |(bd, _)| d2 < bd) {
                            best = Some((d2, v));
                        }
                    }
                }
                if let Some((_, v)) = best {
                    if v != u {
                        b.add_edge(u, v, travel_time(pu, coord[v as usize], false));
                    }
                }
            }
        }
    }

    let (net, _dropped) = b
        .build_largest_component()
        .expect("lattice construction yields a non-empty graph");
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::NodeId;

    #[test]
    fn deterministic_for_equal_seeds() {
        let p = SynthParams::default();
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..a.num_nodes() as NodeId {
            assert_eq!(a.coord(v), b.coord(v));
            assert!(a.neighbors(v).eq(b.neighbors(v)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthParams::default());
        let b = generate(&SynthParams {
            seed: 999,
            ..SynthParams::default()
        });
        // Vertex counts almost surely differ; if not, edge sets will.
        assert!(a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges());
    }

    #[test]
    fn target_vertices_is_approximate() {
        for target in [500usize, 2000, 8000] {
            let p = SynthParams::with_target_vertices(target, 7);
            let g = generate(&p);
            let n = g.num_nodes() as f64;
            assert!(
                (n - target as f64).abs() / (target as f64) < 0.25,
                "target {target}, got {n}"
            );
        }
    }

    #[test]
    fn degree_statistics_match_road_networks() {
        let g = generate(&SynthParams::with_target_vertices(4000, 42));
        // Bounded degree (paper §2 assumes it); lattice max is 8.
        assert!(g.max_degree() <= 8);
        // Table 1's arc/vertex ratio is ≈ 2.4; accept a generous band.
        let avg_degree = g.num_arcs() as f64 / g.num_nodes() as f64;
        assert!((1.8..=3.2).contains(&avg_degree), "avg degree {avg_degree}");
    }

    #[test]
    fn weights_are_positive() {
        let g = generate(&SynthParams::default());
        for v in 0..g.num_nodes() as NodeId {
            for (_, w) in g.neighbors(v) {
                assert!(w >= 1);
            }
        }
    }

    #[test]
    fn highways_speed_up_long_trips() {
        // With highways, the network-distance between far-apart vertices
        // should be clearly smaller than without.
        let base = SynthParams {
            cols: 48,
            rows: 48,
            seed: 11,
            ..SynthParams::default()
        };
        let with_hw = generate(&base);
        let without_hw = generate(&SynthParams {
            highway_period: 0,
            ..base.clone()
        });
        let mut d1 = spq_dijkstra::Dijkstra::new(with_hw.num_nodes());
        let mut d2 = spq_dijkstra::Dijkstra::new(without_hw.num_nodes());
        d1.run(&with_hw, 0);
        d2.run(&without_hw, 0);
        let far1: u64 = (0..with_hw.num_nodes() as NodeId)
            .filter_map(|v| d1.distance(v))
            .max()
            .unwrap();
        let far2: u64 = (0..without_hw.num_nodes() as NodeId)
            .filter_map(|v| d2.distance(v))
            .max()
            .unwrap();
        assert!(
            (far1 as f64) < 0.9 * (far2 as f64),
            "eccentricity with highways {far1} vs without {far2}"
        );
    }

    #[test]
    fn tiny_parameters_still_build() {
        let g = generate(&SynthParams {
            cols: 2,
            rows: 2,
            drop_vertex_prob: 0.0,
            drop_edge_prob: 0.0,
            ..SynthParams::default()
        });
        assert!(g.num_nodes() >= 2);
    }
}
