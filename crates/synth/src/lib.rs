//! Seeded synthetic road networks standing in for the paper's DIMACS data.
//!
//! The paper evaluates on ten extracts of the US road network from the 9th
//! DIMACS Implementation Challenge (Table 1), with travel-time edge
//! weights. Those files are not redistributable here, so this crate
//! generates networks with the two structural properties every evaluated
//! technique actually exploits:
//!
//! 1. **Spatial coherence / planarity** — vertices live in the plane and
//!    edges connect near neighbours, so shortest paths between nearby
//!    sources and destinations share structure (the SILC/PCPD/TNR
//!    premise, paper §1).
//! 2. **Vertex-importance skew** — a sparse "highway" sub-network carries
//!    long-distance traffic (the CH/TNR premise: "a vertex that represents
//!    the entrance of a highway tends to be accessed much more
//!    frequently", §1).
//!
//! The [`registry`] mirrors Table 1's ten datasets at a configurable
//! scale, so every experiment binary can iterate "the datasets" exactly
//! like the paper does. Real DIMACS files can be substituted at any time
//! via [`spq_graph::dimacs`].

pub mod generator;
pub mod registry;

pub use generator::{generate, SynthParams};
pub use registry::{Dataset, Scale, DATASETS};

/// Shrinks a test's synthetic-network vertex target when
/// `SPQ_TEST_FAST=1` (the CI knob, also honoured by the proptest case
/// counts): divides by 4 with a floor of 64 vertices, which keeps every
/// structural property the tests rely on while cutting the quadratic
/// preprocessing costs (SILC, arc flags) by an order of magnitude.
pub fn test_vertices(n: usize) -> usize {
    if std::env::var("SPQ_TEST_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        (n / 4).max(64)
    } else {
        n
    }
}
