//! The dataset registry mirroring the paper's Table 1.
//!
//! Every experiment binary iterates these ten datasets exactly like the
//! paper iterates DE..US. Sizes are scaled by [`Scale`]: the paper spans
//! 48k–24M vertices; the default scale reproduces the same 500× spread at
//! laptop-friendly absolute sizes (≈1.2k–600k vertices), which preserves
//! every *relative* result (slopes in n, crossovers, applicability
//! boundaries) while keeping full runs in minutes.

use spq_graph::RoadNetwork;

use crate::generator::{generate, SynthParams};

/// A Table-1 dataset descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dataset {
    /// Short name used throughout the paper ("DE", "CO", "US", ...).
    pub name: &'static str,
    /// Region the original extract covers.
    pub region: &'static str,
    /// Vertex count of the original DIMACS extract (Table 1).
    pub paper_vertices: u64,
    /// Arc count of the original DIMACS extract (Table 1).
    pub paper_edges: u64,
}

/// The ten datasets of Table 1, smallest to largest.
pub const DATASETS: [Dataset; 10] = [
    Dataset {
        name: "DE",
        region: "Delaware",
        paper_vertices: 48_812,
        paper_edges: 120_489,
    },
    Dataset {
        name: "NH",
        region: "New Hampshire",
        paper_vertices: 115_055,
        paper_edges: 264_218,
    },
    Dataset {
        name: "ME",
        region: "Maine",
        paper_vertices: 187_315,
        paper_edges: 422_998,
    },
    Dataset {
        name: "CO",
        region: "Colorado",
        paper_vertices: 435_666,
        paper_edges: 1_057_066,
    },
    Dataset {
        name: "FL",
        region: "Florida",
        paper_vertices: 1_070_376,
        paper_edges: 2_712_798,
    },
    Dataset {
        name: "CA",
        region: "California and Nevada",
        paper_vertices: 1_890_815,
        paper_edges: 4_657_742,
    },
    Dataset {
        name: "E-US",
        region: "Eastern US",
        paper_vertices: 3_598_623,
        paper_edges: 8_778_114,
    },
    Dataset {
        name: "W-US",
        region: "Western US",
        paper_vertices: 6_262_104,
        paper_edges: 15_248_146,
    },
    Dataset {
        name: "C-US",
        region: "Central US",
        paper_vertices: 14_081_816,
        paper_edges: 34_292_496,
    },
    Dataset {
        name: "US",
        region: "United States",
        paper_vertices: 23_947_347,
        paper_edges: 58_333_344,
    },
];

/// How far to shrink Table 1's sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// ≈1/400 of the paper: DE ≈ 120 vertices, US ≈ 60k. For unit and
    /// integration tests.
    Smoke,
    /// ≈1/40 of the paper: DE ≈ 1.2k vertices, US ≈ 600k. The default for
    /// experiment runs.
    Paper,
    /// Custom divisor applied to Table 1's vertex counts.
    Divisor(f64),
}

impl Scale {
    /// The divisor applied to the paper's vertex counts.
    pub fn divisor(&self) -> f64 {
        match self {
            Scale::Smoke => 400.0,
            Scale::Paper => 40.0,
            Scale::Divisor(d) => *d,
        }
    }

    /// Reads the scale from the `SPQ_SCALE` environment variable
    /// (`smoke`, `paper`, or a numeric divisor); defaults to `Paper`.
    pub fn from_env() -> Scale {
        match std::env::var("SPQ_SCALE").ok().as_deref() {
            Some("smoke") => Scale::Smoke,
            Some("paper") | None => Scale::Paper,
            Some(other) => other
                .parse::<f64>()
                .map(Scale::Divisor)
                .unwrap_or(Scale::Paper),
        }
    }
}

impl Dataset {
    /// Target vertex count at `scale`.
    pub fn target_vertices(&self, scale: Scale) -> usize {
        ((self.paper_vertices as f64 / scale.divisor()).round() as usize).max(64)
    }

    /// Builds the dataset's synthetic network at `scale`, deterministic
    /// per (dataset, scale, seed).
    pub fn build_with_seed(&self, scale: Scale, seed: u64) -> RoadNetwork {
        // Mix the dataset name into the seed so each dataset gets an
        // independent network even under one global seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
        for b in self.name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let params = SynthParams::with_target_vertices(self.target_vertices(scale), h);
        generate(&params)
    }

    /// Builds with the workspace default seed.
    pub fn build(&self, scale: Scale) -> RoadNetwork {
        self.build_with_seed(scale, 0x5eed_0002)
    }

    /// Looks a dataset up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<&'static Dataset> {
        DATASETS.iter().find(|d| d.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        assert_eq!(DATASETS.len(), 10);
        assert_eq!(DATASETS[0].name, "DE");
        assert_eq!(DATASETS[9].name, "US");
        assert_eq!(DATASETS[3].paper_vertices, 435_666);
        // Sizes are strictly increasing, as in Table 1.
        assert!(DATASETS
            .windows(2)
            .all(|w| w[0].paper_vertices < w[1].paper_vertices));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Dataset::by_name("co").unwrap().name, "CO");
        assert_eq!(Dataset::by_name("E-US").unwrap().region, "Eastern US");
        assert!(Dataset::by_name("XX").is_none());
    }

    #[test]
    fn smoke_scale_builds_quickly_and_close_to_target() {
        let d = Dataset::by_name("DE").unwrap();
        let g = d.build(Scale::Smoke);
        let target = d.target_vertices(Scale::Smoke) as f64;
        assert!((g.num_nodes() as f64 - target).abs() / target < 0.35);
    }

    #[test]
    fn datasets_are_distinct_under_one_seed() {
        let a = Dataset::by_name("DE").unwrap().build(Scale::Smoke);
        let b = Dataset::by_name("NH").unwrap().build(Scale::Smoke);
        assert_ne!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    fn scale_divisors() {
        assert_eq!(Scale::Smoke.divisor(), 400.0);
        assert_eq!(Scale::Paper.divisor(), 40.0);
        assert_eq!(Scale::Divisor(10.0).divisor(), 10.0);
    }
}
