//! The hybrid two-grid TNR of Appendix E.1.
//!
//! The hybrid combines a coarse grid `D_g` (full pairwise access-node
//! table) with a fine grid `D_2g` whose pairwise distances are stored
//! only for access nodes of *nearby* cell pairs. The fine grid answers
//! the mid-range queries the coarse grid must hand to the fallback (the
//! paper's Q5/Q6 band), at a fraction of a full fine table's space.
//!
//! One deviation from the paper's description: the paper stores fine
//! pairs for cells with *overlapping outer shells* (Chebyshev ≤ 8); that
//! leaves fine-cell distances 9..10 covered by neither grid (the coarse
//! Chebyshev of such pairs can still be 4). We widen the stored band to
//! Chebyshev ≤ 10 so coverage is continuous.

use spq_ch::ManyToMany;
use spq_graph::grid::VertexGrid;
use spq_graph::size::IndexSize;
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::RoadNetwork;

use crate::access::AccessNodeStrategy;
use crate::index::{pack, unpack, AccessIndex, Tnr, TnrParams};
use crate::query::TnrQuery;

/// The hybrid index: a full coarse [`Tnr`] plus a fine access structure
/// with a sparse pair table.
pub struct HybridTnr {
    /// The coarse level (full table, owns the CH).
    coarse: Tnr,
    /// The fine level's access structure (`I2` analogue).
    fine: AccessIndex,
    /// Sparse fine pairs: CSR per fine global access index, targets
    /// sorted for binary search.
    pair_first: Vec<u32>,
    pair_target: Vec<u32>,
    pair_dist: Vec<u32>,
    /// Fine cell pairs with Chebyshev distance in
    /// `(outer_radius, store_radius]` are answerable from the fine level.
    store_radius: u32,
}

impl HybridTnr {
    /// Builds the hybrid over `net`: coarse grid `params.grid`, fine grid
    /// `2 * params.grid`.
    pub fn build(net: &RoadNetwork, params: &TnrParams) -> Self {
        let coarse = Tnr::build(net, params);
        Self::build_from_coarse(net, coarse)
    }

    /// Builds the fine level on top of an existing coarse index.
    pub fn build_from_coarse(net: &RoadNetwork, coarse: Tnr) -> Self {
        let params = *coarse.params();
        let fine_grid = VertexGrid::build(net, params.grid * 2);
        let fine = AccessIndex::build(
            net,
            coarse.hierarchy(),
            fine_grid,
            params.inner_radius,
            params.outer_radius,
            AccessNodeStrategy::Correct,
        );
        let store_radius = 2 * params.outer_radius + 2;

        // Collect, per fine access node, the set of partner access nodes
        // of cells within the stored band.
        let num_access = fine.access_list.len();
        let mut partners: Vec<Vec<u32>> = vec![Vec::new(); num_access];
        let nonempty: Vec<u32> = fine.grid.nonempty_cells().collect();
        let g = fine.grid.frame().g();
        for &c1 in &nonempty {
            let cell1 = fine.grid.frame().cell_at(c1);
            let a1 = fine.cell_access_of(c1);
            if a1.is_empty() {
                continue;
            }
            // Enumerate only the (2r+1)² cell window around c1.
            let lo_cx = cell1.cx.saturating_sub(store_radius);
            let lo_cy = cell1.cy.saturating_sub(store_radius);
            let hi_cx = (cell1.cx + store_radius).min(g - 1);
            let hi_cy = (cell1.cy + store_radius).min(g - 1);
            for cy in lo_cy..=hi_cy {
                for cx in lo_cx..=hi_cx {
                    let c2 = cy * g + cx;
                    let a2 = fine.cell_access_of(c2);
                    if a2.is_empty() {
                        continue;
                    }
                    for &ai in a1 {
                        partners[ai as usize].extend_from_slice(a2);
                    }
                }
            }
        }
        for p in &mut partners {
            p.sort_unstable();
            p.dedup();
        }

        // Compute the sparse distances with one bucket preparation over
        // all fine access nodes and one forward search per access node.
        let mut pair_first = vec![0u32; num_access + 1];
        for i in 0..num_access {
            pair_first[i + 1] = pair_first[i] + partners[i].len() as u32;
        }
        let total = pair_first[num_access] as usize;
        let mut pair_target = vec![0u32; total];
        let mut pair_dist = vec![0u32; total];
        {
            let mut m2m = ManyToMany::new(coarse.hierarchy());
            m2m.prepare_targets(&fine.access_list);
            let mut row = vec![0 as Dist; num_access];
            for (i, list) in partners.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                m2m.distances_from(fine.access_list[i], &mut row);
                let base = pair_first[i] as usize;
                for (k, &j) in list.iter().enumerate() {
                    pair_target[base + k] = j;
                    pair_dist[base + k] = pack(row[j as usize]);
                }
            }
        }

        HybridTnr {
            coarse,
            fine,
            pair_first,
            pair_target,
            pair_dist,
            store_radius,
        }
    }

    /// The coarse level.
    pub fn coarse(&self) -> &Tnr {
        &self.coarse
    }

    /// Number of distinct fine-level access nodes.
    pub fn num_fine_access_nodes(&self) -> usize {
        self.fine.access_list.len()
    }

    /// Number of stored sparse fine pairs.
    pub fn num_fine_pairs(&self) -> usize {
        self.pair_target.len()
    }

    /// Sparse fine-table lookup.
    #[inline]
    fn fine_pair_dist(&self, a: u32, b: u32) -> Option<Dist> {
        let lo = self.pair_first[a as usize] as usize;
        let hi = self.pair_first[a as usize + 1] as usize;
        let slice = &self.pair_target[lo..hi];
        slice
            .binary_search(&b)
            .ok()
            .map(|k| unpack(self.pair_dist[lo + k]))
    }

    /// Whether the fine level answers a distance query for this pair.
    #[inline]
    pub fn fine_applicable(&self, s: NodeId, t: NodeId) -> bool {
        let cs = self.fine.grid.cell_of(s);
        let ct = self.fine.grid.cell_of(t);
        let cheb = cs.chebyshev(&ct);
        cheb > self.coarse.params().outer_radius && cheb <= self.store_radius
    }

    /// Distance via the fine level's sparse table, if applicable.
    fn fine_distance(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        let cs = self.fine.grid.cell_index_of(s);
        let ct = self.fine.grid.cell_index_of(t);
        let acc_s = self.fine.cell_access_of(cs);
        let acc_t = self.fine.cell_access_of(ct);
        let ds = self.fine.vertex_access_dists(s);
        let dt = self.fine.vertex_access_dists(t);
        let mut best = INFINITY;
        for (k, &ai) in acc_s.iter().enumerate() {
            let da = unpack(ds[k]);
            if da >= best {
                continue;
            }
            for (l, &bi) in acc_t.iter().enumerate() {
                let db = unpack(dt[l]);
                let Some(mid) = self.fine_pair_dist(ai, bi) else {
                    continue;
                };
                let total = da + mid + db;
                if total < best {
                    best = total;
                }
            }
        }
        if best < INFINITY {
            Some(best)
        } else {
            None
        }
    }

    /// Creates a query workspace.
    pub fn query<'a>(&'a self, net: &'a RoadNetwork) -> HybridQuery<'a> {
        HybridQuery {
            hybrid: self,
            inner: self.coarse.query().with_network(net),
            net,
        }
    }
}

impl IndexSize for HybridTnr {
    fn index_size_bytes(&self) -> usize {
        self.coarse.index_size_bytes()
            + self.fine.size_bytes()
            + self.pair_first.len() * 4
            + self.pair_target.len() * 4
            + self.pair_dist.len() * 4
    }
}

/// Query workspace for the hybrid index.
pub struct HybridQuery<'a> {
    hybrid: &'a HybridTnr,
    inner: TnrQuery<'a>,
    net: &'a RoadNetwork,
}

/// Which level answered the most recent hybrid query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridAnswered {
    /// The fine grid's sparse table.
    Fine,
    /// The coarse grid's full table.
    Coarse,
    /// The fallback technique.
    Fallback,
}

impl<'a> HybridQuery<'a> {
    /// Distance query: fine level first, then coarse, then fallback.
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.distance_tagged(s, t).map(|(d, _)| d)
    }

    /// Distance query reporting which level answered.
    pub fn distance_tagged(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, HybridAnswered)> {
        if self.hybrid.fine_applicable(s, t) {
            if let Some(d) = self.hybrid.fine_distance(s, t) {
                return Some((d, HybridAnswered::Fine));
            }
        }
        let d = self.inner.distance(s, t)?;
        let how = match self.inner.last_answered {
            crate::query::Answered::Tables => HybridAnswered::Coarse,
            _ => HybridAnswered::Fallback,
        };
        Some((d, how))
    }

    /// Shortest-path query: greedy walk driven by hybrid distance
    /// evaluations, with a fallback tail (mirrors [`TnrQuery`]).
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        if !self.hybrid.coarse.path_applicable(s, t) {
            return self.inner.shortest_path(s, t);
        }
        let mut path = vec![s];
        let mut cur = s;
        let mut total: Dist = 0;
        while self.hybrid.coarse.distance_applicable(cur, t) || self.hybrid.fine_applicable(cur, t)
        {
            let mut best: Option<(Dist, NodeId, Dist)> = None;
            let neighbors: Vec<(NodeId, spq_graph::Weight)> = self.net.neighbors(cur).collect();
            for (v, w) in neighbors {
                let Some(dv) = self.distance(v, t) else {
                    continue;
                };
                let cand = (w as Dist + dv, v, w as Dist);
                if best.map_or(true, |(bd, bv, _)| cand.0 < bd || (cand.0 == bd && v < bv)) {
                    best = Some(cand);
                }
            }
            let (_, v, w) = best?;
            path.push(v);
            total += w;
            cur = v;
            if cur == t {
                return Some((total, path));
            }
        }
        let (tail_d, tail) = self.inner.shortest_path(cur, t)?;
        path.extend_from_slice(&tail[1..]);
        Some((total + tail_d, path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::Dijkstra;
    use spq_synth::SynthParams;

    #[test]
    fn hybrid_is_exact_and_uses_all_levels() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(900, 51));
        let hybrid = HybridTnr::build(
            &net,
            &TnrParams {
                grid: 8,
                ..TnrParams::default()
            },
        );
        let mut q = hybrid.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as u64;
        let mut state = 0x77aa_bbccu64;
        let mut fine = 0;
        let mut coarse = 0;
        let mut fallback = 0;
        for _ in 0..120 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            let s = ((state >> 33) % n) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            let t = ((state >> 33) % n) as NodeId;
            d.run_to_target(&net, s, t);
            let (dist, how) = q.distance_tagged(s, t).unwrap();
            assert_eq!(Some(dist), d.distance(t), "({s},{t})");
            match how {
                HybridAnswered::Fine => fine += 1,
                HybridAnswered::Coarse => coarse += 1,
                HybridAnswered::Fallback => fallback += 1,
            }
            let (pd, path) = q.shortest_path(s, t).unwrap();
            assert_eq!(Some(pd), d.distance(t), "path ({s},{t})");
            assert_eq!(net.path_length(&path), d.distance(t));
        }
        // With a coarse 8-grid and fine 16-grid on random pairs all three
        // regimes must occur.
        assert!(fine > 0, "fine level never used");
        assert!(coarse > 0, "coarse level never used");
        assert!(fallback > 0, "fallback never used");
    }

    #[test]
    fn hybrid_space_sits_between_grids() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(2000, 52));
        let params_c = TnrParams {
            grid: 16,
            ..TnrParams::default()
        };
        let params_f = TnrParams {
            grid: 32,
            ..TnrParams::default()
        };
        let coarse = Tnr::build(&net, &params_c);
        let fine = Tnr::build(&net, &params_f);
        let hybrid = HybridTnr::build(&net, &params_c);
        assert!(hybrid.index_size_bytes() > coarse.index_size_bytes());
        // The hybrid's fine level stores only nearby pairs, so it should
        // undercut a full fine-grid table plus the coarse table.
        assert!(
            hybrid.index_size_bytes() < coarse.index_size_bytes() + fine.index_size_bytes(),
            "hybrid {} vs coarse {} + fine {}",
            hybrid.index_size_bytes(),
            coarse.index_size_bytes(),
            fine.index_size_bytes()
        );
    }
}
