//! TNR query processing (paper §3.3).

use spq_ch::ChQuery;
use spq_dijkstra::BiDijkstra;
use spq_graph::backend::QueryBudget;
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::RoadNetwork;

use crate::index::{unpack, Fallback, Tnr};

/// How the most recent query was answered — the harness reports, per
/// query set, how often TNR used its tables vs. the fallback (this is
/// what makes the paper's Q5/Q6/Q7 transition visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answered {
    /// Pure table lookups (Equation 1).
    Tables,
    /// Greedy access-node walk plus a local fallback tail (path queries).
    WalkWithTail,
    /// Entirely by the fallback technique.
    Fallback,
}

/// Reusable TNR query workspace.
pub struct TnrQuery<'a> {
    tnr: &'a Tnr,
    net: Option<&'a RoadNetwork>,
    ch_query: ChQuery<'a>,
    bidi: BiDijkstra,
    /// The t-side scratch: `(global_access_index, dist(access, t))`.
    t_side: Vec<(u32, Dist)>,
    /// Budget charged once per greedy-walk step (the fallbacks charge
    /// their own copies per settled vertex).
    budget: QueryBudget,
    /// How the most recent query was answered.
    pub last_answered: Answered,
}

impl<'a> TnrQuery<'a> {
    /// Creates a workspace. Shortest-path queries and the
    /// bidirectional-Dijkstra fallback additionally need the network:
    /// attach it with [`TnrQuery::with_network`].
    pub fn new(tnr: &'a Tnr) -> Self {
        TnrQuery {
            tnr,
            net: None,
            ch_query: ChQuery::new(tnr.hierarchy()),
            bidi: BiDijkstra::new(tnr.net_nodes),
            t_side: Vec::new(),
            budget: QueryBudget::unlimited(),
            last_answered: Answered::Tables,
        }
    }

    /// Installs the cancellation budget subsequent queries run under.
    /// The fallback workspaces get their own copies (a clone shares the
    /// deadline and kill flag; only the node-cap accounting is local).
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.ch_query.set_budget(budget.clone());
        self.bidi.set_budget(budget.clone());
        self.budget = budget;
    }

    /// Whether a query since the last [`TnrQuery::set_budget`] was cut
    /// short by the budget, in the walk or in either fallback.
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted() || self.ch_query.budget_exhausted() || self.bidi.budget_exhausted()
    }

    /// Attaches the road network (required for path queries and for the
    /// bidirectional-Dijkstra fallback).
    pub fn with_network(mut self, net: &'a RoadNetwork) -> Self {
        self.net = Some(net);
        self
    }

    /// Distance query (§2). Uses Equation 1 whenever the locality filter
    /// allows, otherwise the configured fallback.
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        if self.tnr.distance_applicable(s, t) {
            self.last_answered = Answered::Tables;
            let d = self.table_distance(s, t);
            if d < INFINITY {
                return Some(d);
            }
            // Incomplete access sets (possible only with the flawed
            // strategy) can leave no covering pair; fall through so the
            // demonstration binary can still compare against the truth.
        }
        self.last_answered = Answered::Fallback;
        self.fallback_distance(s, t)
    }

    /// Equation 1: min over access pairs. `INFINITY` if either side has
    /// no access nodes.
    pub fn table_distance(&mut self, s: NodeId, t: NodeId) -> Dist {
        self.prepare_t_side(t);
        self.eval_source_side(s)
    }

    /// Fills the t-side scratch with `(access_index, dist(access, t))`.
    fn prepare_t_side(&mut self, t: NodeId) {
        self.t_side.clear();
        let ct = self.tnr.access.grid.cell_index_of(t);
        let dists = self.tnr.access.vertex_access_dists(t);
        for (k, &bi) in self.tnr.access.cell_access_of(ct).iter().enumerate() {
            let d = unpack(dists[k]);
            if d < INFINITY {
                self.t_side.push((bi, d));
            }
        }
    }

    /// min over a ∈ A(cell(v)), (b, db) in scratch of
    /// `dist(v, a) + I1[a][b] + db`.
    fn eval_source_side(&mut self, v: NodeId) -> Dist {
        let cv = self.tnr.access.grid.cell_index_of(v);
        let dists = self.tnr.access.vertex_access_dists(v);
        let mut best = INFINITY;
        for (k, &ai) in self.tnr.access.cell_access_of(cv).iter().enumerate() {
            let da = unpack(dists[k]);
            if da >= best {
                continue;
            }
            for &(bi, db) in &self.t_side {
                let total = da + self.tnr.access_pair_dist(ai, bi) + db;
                if total < best {
                    best = total;
                }
            }
        }
        best
    }

    fn fallback_distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        match self.tnr.params().fallback {
            Fallback::Ch => self.ch_query.distance(s, t),
            Fallback::BiDijkstra => {
                let net = self
                    .net
                    .expect("bidirectional-Dijkstra fallback needs with_network()");
                self.bidi.distance(net, s, t)
            }
        }
    }

    /// Shortest-path query (§2). When the outer shells of the two cells
    /// are disjoint, the path is retrieved by the paper's greedy
    /// traversal: repeatedly move to the neighbour `v` of the current
    /// vertex minimising `w(cur, v) + dist(v, t)`, with `dist(v, t)`
    /// evaluated from the pre-computed tables (Equation 1). Once the walk
    /// enters the region where the tables no longer apply, the local tail
    /// is completed by the fallback technique.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        let net = self.net.expect("shortest-path queries need with_network()");
        if !self.tnr.path_applicable(s, t) {
            self.last_answered = Answered::Fallback;
            return self.fallback_path(s, t);
        }
        self.last_answered = Answered::WalkWithTail;
        self.prepare_t_side(t);

        let mut path = vec![s];
        let mut cur = s;
        let mut total: Dist = 0;
        loop {
            if !self.budget.charge() {
                return None;
            }
            if !self.tnr.distance_applicable(cur, t) {
                break;
            }
            // Pick the neighbour on a shortest path to t.
            let mut best: Option<(Dist, NodeId, Dist)> = None; // (w + d, v, w)
            for (v, w) in net.neighbors(cur) {
                let dv = if self.tnr.distance_applicable(v, t) {
                    let d = self.eval_source_side(v);
                    if d < INFINITY {
                        d
                    } else {
                        match self.fallback_distance(v, t) {
                            Some(d) => d,
                            None => continue,
                        }
                    }
                } else {
                    // Near the boundary the tables stop applying for some
                    // neighbours; their exact distance comes from the
                    // fallback so the walk stays on a shortest path.
                    match self.fallback_distance(v, t) {
                        Some(d) => d,
                        None => continue,
                    }
                };
                let cand = (w as Dist + dv, v, w as Dist);
                if best.map_or(true, |(bd, bv, _)| cand.0 < bd || (cand.0 == bd && v < bv)) {
                    best = Some(cand);
                }
            }
            let (_, v, w) = best?;
            path.push(v);
            total += w;
            cur = v;
            if cur == t {
                return Some((total, path));
            }
        }

        // Local tail.
        let (tail_d, tail) = self.fallback_path(cur, t)?;
        path.extend_from_slice(&tail[1..]);
        Some((total + tail_d, path))
    }

    fn fallback_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        match self.tnr.params().fallback {
            Fallback::Ch => self.ch_query.shortest_path(s, t),
            Fallback::BiDijkstra => {
                let net = self.net.expect("fallback path needs with_network()");
                self.bidi.shortest_path(net, s, t)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// spq-serve integration: TNR behind the unified backend interface.

impl spq_graph::backend::Backend for Tnr {
    fn backend_name(&self) -> &'static str {
        "TNR"
    }

    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn spq_graph::backend::Session + 'a> {
        Box::new(self.query().with_network(net))
    }
}

impl spq_graph::backend::Session for TnrQuery<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        TnrQuery::distance(self, s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        TnrQuery::shortest_path(self, s, t)
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        TnrQuery::set_budget(self, budget);
    }

    fn interrupted(&self) -> bool {
        self.budget_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TnrParams;
    use spq_dijkstra::Dijkstra;
    use spq_synth::SynthParams;

    fn check_exact(net: &RoadNetwork, tnr: &Tnr, pairs: usize) {
        let mut q = tnr.query().with_network(net);
        let mut d = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as u64;
        let mut state = 0x5151_5151u64;
        let mut used_tables = 0usize;
        for _ in 0..pairs {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let s = ((state >> 33) % n) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let t = ((state >> 33) % n) as NodeId;
            d.run_to_target(net, s, t);
            let expect = d.distance(t);
            assert_eq!(q.distance(s, t), expect, "distance ({s},{t})");
            if q.last_answered == Answered::Tables {
                used_tables += 1;
            }
            let (pd, path) = q.shortest_path(s, t).expect("path exists");
            assert_eq!(Some(pd), expect, "path length ({s},{t})");
            assert_eq!(path.first().copied(), Some(s));
            assert_eq!(path.last().copied(), Some(t));
            assert_eq!(net.path_length(&path), expect, "path validity ({s},{t})");
        }
        // On a 16-grid most random pairs are non-local: the tables must
        // actually be exercised, not just the fallback.
        assert!(
            used_tables * 3 > pairs,
            "only {used_tables}/{pairs} used tables"
        );
    }

    #[test]
    fn exact_with_ch_fallback() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(800, 31));
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 16,
                ..TnrParams::default()
            },
        );
        check_exact(&net, &tnr, 60);
    }

    #[test]
    fn exact_with_bidijkstra_fallback() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(800, 32));
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 16,
                fallback: Fallback::BiDijkstra,
                ..TnrParams::default()
            },
        );
        check_exact(&net, &tnr, 40);
    }

    #[test]
    fn local_queries_fall_back() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(800, 33));
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 16,
                ..TnrParams::default()
            },
        );
        let mut q = tnr.query().with_network(&net);
        // A vertex and its neighbour are always in overlapping shells.
        let s = 0u32;
        let (t, w) = net.neighbors(s).next().unwrap();
        let d = q.distance(s, t).unwrap();
        assert_eq!(q.last_answered, Answered::Fallback);
        assert!(d <= w as Dist);
    }

    #[test]
    fn trivial_and_identical_queries() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(400, 34));
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 8,
                ..TnrParams::default()
            },
        );
        let mut q = tnr.query().with_network(&net);
        assert_eq!(q.distance(5, 5), Some(0));
        let (d, p) = q.shortest_path(5, 5).unwrap();
        assert_eq!(d, 0);
        assert_eq!(p, vec![5]);
    }
}
