//! The TNR index: grid, access-node sets, and the two distance tables.

use spq_ch::{ContractionHierarchy, ManyToMany};
use spq_dijkstra::Dijkstra;
use spq_graph::grid::VertexGrid;
use spq_graph::par;
use spq_graph::size::IndexSize;
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::RoadNetwork;

use crate::access::{access_nodes_of_cell, shells_of, AccessNodeStrategy};
use crate::query::TnrQuery;

/// Sentinel inside the packed `u32` distance tables.
pub(crate) const TABLE_INF: u32 = u32::MAX;

/// Which auxiliary technique answers the local queries TNR cannot
/// (paper §4.1 and Appendix E.1 compare both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fallback {
    /// Contraction Hierarchies — the combination the paper recommends.
    #[default]
    Ch,
    /// Plain bidirectional Dijkstra.
    BiDijkstra,
}

/// TNR tuning parameters.
///
/// The defaults are the 1/40-scale equivalent of the paper's preferred
/// configuration (a 128×128 grid with 5×5 inner and 9×9 outer shells):
/// a 32×32 grid whose inner shell is the cell boundary and whose outer
/// shell is the surrounding 3×3 square. This keeps the *absolute* shell
/// geometry (extent/32-sized outer shells) and the Q6/Q7 locality-filter
/// crossover of the paper while the per-dataset vertex counts are 40×
/// smaller. Passing `grid: 128, inner_radius: 2, outer_radius: 4`
/// restores the paper's literal values for full-size DIMACS data.
#[derive(Debug, Clone, Copy)]
pub struct TnrParams {
    /// Grid resolution `g` (the paper evaluates 128 and 256; 128 wins).
    pub grid: u32,
    /// Inner-shell radius in cells (2 = the paper's 5×5 square).
    pub inner_radius: u32,
    /// Outer-shell radius in cells (4 = the paper's 9×9 square).
    pub outer_radius: u32,
    /// Auxiliary technique for local queries.
    pub fallback: Fallback,
    /// Access-node algorithm (default: the paper's corrected method).
    pub access: AccessNodeStrategy,
}

impl Default for TnrParams {
    fn default() -> Self {
        TnrParams {
            grid: 32,
            inner_radius: 0,
            outer_radius: 1,
            fallback: Fallback::Ch,
            access: AccessNodeStrategy::Correct,
        }
    }
}

/// Per-grid access-node structure: the cell → access-node lists plus
/// `I2`, the vertex → own-cell access-node distances. Shared by the
/// plain index (which adds the full pairwise table `I1`) and the hybrid
/// two-grid index of Appendix E.1 (which adds a sparse one).
pub(crate) struct AccessIndex {
    pub grid: VertexGrid,
    /// Global deduplicated access-node vertex ids.
    pub access_list: Vec<NodeId>,
    /// Per-cell CSR of global access indices.
    pub cell_first: Vec<u32>,
    pub cell_access: Vec<u32>,
    /// `I2` CSR parallel to the vertex's cell list.
    pub vertex_first: Vec<u32>,
    pub vertex_access_dist: Vec<u32>,
}

impl AccessIndex {
    pub fn build(
        net: &RoadNetwork,
        ch: &ContractionHierarchy,
        grid: VertexGrid,
        inner_radius: u32,
        outer_radius: u32,
        strategy: AccessNodeStrategy,
    ) -> Self {
        let num_cells = grid.frame().num_cells();

        // Phase 1: access nodes per cell — one shortest-path tree per
        // cell vertex, independent across cells, so cells fan out over
        // the worker pool with one Dijkstra workspace each.
        let mut per_cell: Vec<Vec<NodeId>> = vec![Vec::new(); num_cells];
        let nonempty: Vec<u32> = grid.nonempty_cells().collect();
        let computed = par::par_map(
            &nonempty,
            || Dijkstra::new(net.num_nodes()),
            |dijkstra, &c| {
                let shells = shells_of(&grid, c, inner_radius, outer_radius);
                access_nodes_of_cell(net, &grid, c, &shells, strategy, outer_radius, dijkstra).nodes
            },
        );
        for (&c, nodes) in nonempty.iter().zip(computed) {
            per_cell[c as usize] = nodes;
        }

        // Phase 2: global deduplication.
        let mut access_list: Vec<NodeId> = per_cell.iter().flatten().copied().collect();
        access_list.sort_unstable();
        access_list.dedup();
        let mut cell_first = vec![0u32; num_cells + 1];
        for c in 0..num_cells {
            cell_first[c + 1] = cell_first[c] + per_cell[c].len() as u32;
        }
        let mut cell_access = Vec::with_capacity(cell_first[num_cells] as usize);
        for nodes in &per_cell {
            cell_access.extend(nodes.iter().map(|&v| {
                access_list
                    .binary_search(&v)
                    .expect("access node is listed") as u32
            }));
        }

        // Phase 3: I2 — one CH many-to-many per cell.
        let n = net.num_nodes();
        let mut vertex_first = vec![0u32; n + 1];
        for v in 0..n {
            let c = grid.cell_index_of(v as NodeId) as usize;
            vertex_first[v + 1] = vertex_first[v] + per_cell[c].len() as u32;
        }
        let mut vertex_access_dist = vec![TABLE_INF; vertex_first[n] as usize];
        let tables = par::par_map(
            &nonempty,
            || ManyToMany::new(ch),
            |m2m, &c| {
                let targets = &per_cell[c as usize];
                if targets.is_empty() {
                    return Vec::new();
                }
                m2m.table(grid.vertices_in(c), targets)
            },
        );
        for (&c, t) in nonempty.iter().zip(tables) {
            let targets = &per_cell[c as usize];
            if targets.is_empty() {
                continue;
            }
            let sources = grid.vertices_in(c);
            for (i, &v) in sources.iter().enumerate() {
                let base = vertex_first[v as usize] as usize;
                for j in 0..targets.len() {
                    vertex_access_dist[base + j] = pack(t[i * targets.len() + j]);
                }
            }
        }

        AccessIndex {
            grid,
            access_list,
            cell_first,
            cell_access,
            vertex_first,
            vertex_access_dist,
        }
    }

    /// Global access indices of cell `c`.
    #[inline]
    pub fn cell_access_of(&self, c: u32) -> &[u32] {
        &self.cell_access
            [self.cell_first[c as usize] as usize..self.cell_first[c as usize + 1] as usize]
    }

    /// Distances from `v` to its cell's access nodes.
    #[inline]
    pub fn vertex_access_dists(&self, v: NodeId) -> &[u32] {
        &self.vertex_access_dist
            [self.vertex_first[v as usize] as usize..self.vertex_first[v as usize + 1] as usize]
    }

    pub fn size_bytes(&self) -> usize {
        self.access_list.len() * 4
            + self.cell_first.len() * 4
            + self.cell_access.len() * 4
            + self.vertex_first.len() * 4
            + self.vertex_access_dist.len() * 4
            + self.grid.index_size_bytes()
    }
}

/// The frozen TNR index (paper §3.3).
///
/// Consists of: the vertex grid; per-cell access-node lists (indices into
/// a deduplicated global access-node array); `I2`, the distances from
/// each vertex to the access nodes of its own cell; and `I1`, the
/// pairwise distance table over all access nodes. A contraction
/// hierarchy is always built (it accelerates preprocessing, §4.1) and is
/// retained when it also serves as the query fallback.
pub struct Tnr {
    pub(crate) net_nodes: usize,
    pub(crate) params: TnrParams,
    pub(crate) access: AccessIndex,
    pub(crate) ch: ContractionHierarchy,
    /// `I1`: row-major pairwise distances between global access nodes.
    pub(crate) table: Vec<u32>,
}

impl Tnr {
    /// Preprocesses `net` with default parameters.
    pub fn build_default(net: &RoadNetwork) -> Self {
        Self::build(net, &TnrParams::default())
    }

    /// Preprocesses `net`.
    pub fn build(net: &RoadNetwork, params: &TnrParams) -> Self {
        let ch = ContractionHierarchy::build(net);
        Self::build_with_ch(net, params, ch)
    }

    /// Preprocesses `net` reusing an existing hierarchy (the hybrid-grid
    /// variant builds several indexes over one CH).
    pub fn build_with_ch(net: &RoadNetwork, params: &TnrParams, ch: ContractionHierarchy) -> Self {
        assert!(
            params.inner_radius < params.outer_radius,
            "inner shell must nest inside outer shell"
        );
        let grid = VertexGrid::build(net, params.grid);
        let access = AccessIndex::build(
            net,
            &ch,
            grid,
            params.inner_radius,
            params.outer_radius,
            params.access,
        );

        // I1 — pairwise distances between all access nodes. Both bucket
        // phases fan out across the worker pool (access-node counts run
        // into the thousands on paper-scale networks).
        let table = if access.access_list.is_empty() {
            Vec::new()
        } else {
            spq_ch::par_table(&ch, &access.access_list, &access.access_list)
                .into_iter()
                .map(pack)
                .collect()
        };

        Tnr {
            net_nodes: net.num_nodes(),
            params: *params,
            access,
            ch,
            table,
        }
    }

    /// The parameters this index was built with.
    pub fn params(&self) -> &TnrParams {
        &self.params
    }

    /// The hierarchy built during preprocessing.
    pub fn hierarchy(&self) -> &ContractionHierarchy {
        &self.ch
    }

    /// The vertex grid.
    pub fn grid(&self) -> &VertexGrid {
        &self.access.grid
    }

    /// Number of distinct access nodes.
    pub fn num_access_nodes(&self) -> usize {
        self.access.access_list.len()
    }

    /// Average access nodes per non-empty cell (the paper observes ≈10).
    pub fn avg_access_per_cell(&self) -> f64 {
        let nonempty = self.access.grid.nonempty_cells().count();
        if nonempty == 0 {
            return 0.0;
        }
        self.access.cell_access.len() as f64 / nonempty as f64
    }

    /// Table distance between global access indices.
    #[inline]
    pub(crate) fn access_pair_dist(&self, a: u32, b: u32) -> Dist {
        unpack(self.table[a as usize * self.access.access_list.len() + b as usize])
    }

    /// Whether the pre-computed information can answer a *distance*
    /// query between these cells: the target must lie beyond the source
    /// cell's outer shell (§3.3), i.e. Chebyshev cell distance strictly
    /// above the outer radius.
    #[inline]
    pub fn distance_applicable(&self, s: NodeId, t: NodeId) -> bool {
        let cs = self.access.grid.cell_of(s);
        let ct = self.access.grid.cell_of(t);
        cs.chebyshev(&ct) > self.params.outer_radius
    }

    /// Whether the pre-computed information can drive *shortest-path*
    /// retrieval: the paper requires the two outer shells to be disjoint.
    #[inline]
    pub fn path_applicable(&self, s: NodeId, t: NodeId) -> bool {
        let cs = self.access.grid.cell_of(s);
        let ct = self.access.grid.cell_of(t);
        cs.chebyshev(&ct) > 2 * self.params.outer_radius
    }

    /// Creates a query workspace.
    pub fn query(&self) -> TnrQuery<'_> {
        TnrQuery::new(self)
    }
}

#[inline]
pub(crate) fn pack(d: Dist) -> u32 {
    if d >= INFINITY {
        TABLE_INF
    } else {
        u32::try_from(d).expect("distances fit u32 on road networks")
    }
}

#[inline]
pub(crate) fn unpack(d: u32) -> Dist {
    if d == TABLE_INF {
        INFINITY
    } else {
        d as Dist
    }
}

impl IndexSize for Tnr {
    fn index_size_bytes(&self) -> usize {
        let own = self.access.size_bytes() + self.table.len() * 4;
        // The hierarchy is part of the shipped index when it serves as
        // the fallback (the configuration the paper reports); with plain
        // bidirectional Dijkstra fallback the CH is preprocessing-only.
        match self.params.fallback {
            Fallback::Ch => own + self.ch.index_size_bytes(),
            Fallback::BiDijkstra => own,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_synth::SynthParams;

    fn small_net() -> RoadNetwork {
        spq_synth::generate(&SynthParams::with_target_vertices(700, 21))
    }

    #[test]
    fn build_produces_access_structure() {
        let net = small_net();
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 16,
                ..TnrParams::default()
            },
        );
        assert!(tnr.num_access_nodes() > 0);
        assert!(tnr.avg_access_per_cell() < 64.0);
        for v in 0..net.num_nodes() as NodeId {
            let c = tnr.access.grid.cell_index_of(v);
            assert_eq!(
                tnr.access.vertex_access_dists(v).len(),
                tnr.access.cell_access_of(c).len()
            );
        }
    }

    #[test]
    fn i2_distances_are_exact() {
        let net = small_net();
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 16,
                ..TnrParams::default()
            },
        );
        let mut d = Dijkstra::new(net.num_nodes());
        for v in (0..net.num_nodes() as NodeId).step_by(97) {
            d.run(&net, v);
            let c = tnr.access.grid.cell_index_of(v);
            for (k, &ai) in tnr.access.cell_access_of(c).iter().enumerate() {
                let a = tnr.access.access_list[ai as usize];
                assert_eq!(
                    unpack(tnr.access.vertex_access_dists(v)[k]),
                    d.distance(a).unwrap(),
                    "I2({v}, {a})"
                );
            }
        }
    }

    #[test]
    fn i1_distances_are_exact() {
        let net = small_net();
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 16,
                ..TnrParams::default()
            },
        );
        let mut d = Dijkstra::new(net.num_nodes());
        let a = tnr.num_access_nodes();
        for i in (0..a).step_by(11.max(a / 8)) {
            d.run(&net, tnr.access.access_list[i]);
            for j in 0..a {
                assert_eq!(
                    tnr.access_pair_dist(i as u32, j as u32),
                    d.distance(tnr.access.access_list[j]).unwrap(),
                    "I1({i},{j})"
                );
            }
        }
    }

    #[test]
    fn applicability_follows_chebyshev() {
        let net = small_net();
        let params = TnrParams {
            grid: 16,
            inner_radius: 2,
            outer_radius: 4,
            ..TnrParams::default()
        };
        let tnr = Tnr::build(&net, &params);
        for s in (0..net.num_nodes() as NodeId).step_by(53) {
            for t in (0..net.num_nodes() as NodeId).step_by(71) {
                let cheb = tnr
                    .access
                    .grid
                    .cell_of(s)
                    .chebyshev(&tnr.access.grid.cell_of(t));
                assert_eq!(tnr.distance_applicable(s, t), cheb > params.outer_radius);
                assert_eq!(tnr.path_applicable(s, t), cheb > 2 * params.outer_radius);
            }
        }
    }

    #[test]
    fn finer_grid_costs_more_space() {
        let net = small_net();
        let coarse = Tnr::build(
            &net,
            &TnrParams {
                grid: 8,
                ..TnrParams::default()
            },
        );
        let fine = Tnr::build(
            &net,
            &TnrParams {
                grid: 16,
                ..TnrParams::default()
            },
        );
        assert!(
            fine.index_size_bytes() > coarse.index_size_bytes(),
            "fine {} vs coarse {}",
            fine.index_size_bytes(),
            coarse.index_size_bytes()
        );
    }

    #[test]
    fn pack_unpack_roundtrip() {
        assert_eq!(unpack(pack(0)), 0);
        assert_eq!(unpack(pack(123_456)), 123_456);
        assert_eq!(unpack(pack(INFINITY)), INFINITY);
    }
}
