//! Binary persistence for TNR indexes.
//!
//! Stores the parameters, the embedded contraction hierarchy, the
//! access-node structure, and both distance tables (`I1`, `I2`). The
//! vertex grid is rebuilt deterministically from the network at load
//! time. The serialised bytes double as the determinism witness for
//! parallel builds (`tests/determinism.rs`).

use std::io::{self, Read, Write};

use spq_ch::ContractionHierarchy;
use spq_graph::binio::{self, IndexLoadError};
use spq_graph::grid::VertexGrid;
use spq_graph::RoadNetwork;

use crate::access::AccessNodeStrategy;
use crate::index::{AccessIndex, Fallback, Tnr, TnrParams};

const MAGIC: &[u8; 4] = b"SPQT";
/// Version 2 wraps the payload in the checksummed container; version-1
/// files predate it and are refused at load (rebuild to migrate).
const VERSION: u32 = 2;

fn bad(msg: String) -> IndexLoadError {
    IndexLoadError::Corrupt(msg)
}

impl Tnr {
    /// Serialises the full index: parameters, hierarchy, access-node
    /// structure, and both distance tables, inside a checksummed
    /// container (the embedded hierarchy carries its own container, so
    /// it is integrity-checked twice — once by the outer checksum, once
    /// by its own).
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        binio::write_u64(&mut body, self.net_nodes as u64)?;
        binio::write_u64(&mut body, self.params.grid as u64)?;
        binio::write_u64(&mut body, self.params.inner_radius as u64)?;
        binio::write_u64(&mut body, self.params.outer_radius as u64)?;
        let fallback = match self.params.fallback {
            Fallback::Ch => 0u8,
            Fallback::BiDijkstra => 1,
        };
        let access = match self.params.access {
            AccessNodeStrategy::Correct => 0u8,
            AccessNodeStrategy::FlawedBast => 1,
        };
        binio::write_u8s(&mut body, &[fallback, access])?;
        self.ch.write_binary(&mut body)?;
        binio::write_u32s(&mut body, &self.access.access_list)?;
        binio::write_u32s(&mut body, &self.access.cell_first)?;
        binio::write_u32s(&mut body, &self.access.cell_access)?;
        binio::write_u32s(&mut body, &self.access.vertex_first)?;
        binio::write_u32s(&mut body, &self.access.vertex_access_dist)?;
        binio::write_u32s(&mut body, &self.table)?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Deserialises an index written by [`Tnr::write_binary`],
    /// rebuilding the vertex grid over `net` (the same network the index
    /// was built on). The checksum and every structural invariant are
    /// verified before the index is returned.
    pub fn read_binary(net: &RoadNetwork, r: &mut impl Read) -> Result<Tnr, IndexLoadError> {
        let body = binio::read_checksummed(r, MAGIC, VERSION)?;
        let r = &mut &body[..];
        let net_nodes = binio::read_u64(r)? as usize;
        if net_nodes != net.num_nodes() {
            return Err(bad(format!(
                "index built over {net_nodes} vertices, network has {}",
                net.num_nodes()
            )));
        }
        let grid_g = binio::read_u64(r)?;
        let inner_radius = binio::read_u64(r)? as u32;
        let outer_radius = binio::read_u64(r)? as u32;
        let modes = binio::read_u8s(r)?;
        if grid_g == 0 || grid_g > u32::MAX as u64 || modes.len() != 2 {
            return Err(bad("malformed TNR parameter block".into()));
        }
        let params = TnrParams {
            grid: grid_g as u32,
            inner_radius,
            outer_radius,
            fallback: match modes[0] {
                0 => Fallback::Ch,
                1 => Fallback::BiDijkstra,
                m => return Err(bad(format!("unknown fallback mode {m}"))),
            },
            access: match modes[1] {
                0 => AccessNodeStrategy::Correct,
                1 => AccessNodeStrategy::FlawedBast,
                m => return Err(bad(format!("unknown access-node strategy {m}"))),
            },
        };
        let ch = ContractionHierarchy::read_binary(r)
            .map_err(|e| bad(format!("embedded hierarchy: {e}")))?;
        if ch.num_nodes() != net_nodes {
            return Err(bad("embedded hierarchy does not match the network".into()));
        }
        let access_list = binio::read_u32s(r)?;
        let cell_first = binio::read_u32s(r)?;
        let cell_access = binio::read_u32s(r)?;
        let vertex_first = binio::read_u32s(r)?;
        let vertex_access_dist = binio::read_u32s(r)?;
        let table = binio::read_u32s(r)?;

        let grid = VertexGrid::build(net, params.grid);
        let num_cells = grid.frame().num_cells();
        if cell_first.len() != num_cells + 1
            || cell_first[num_cells] as usize != cell_access.len()
            || vertex_first.len() != net_nodes + 1
            || vertex_first[net_nodes] as usize != vertex_access_dist.len()
            || table.len() != access_list.len() * access_list.len()
        {
            return Err(bad("TNR table shapes are inconsistent".into()));
        }
        if let Some(&a) = cell_access
            .iter()
            .find(|&&a| a as usize >= access_list.len())
        {
            return Err(bad(format!(
                "access index {a} out of range for {} access nodes",
                access_list.len()
            )));
        }
        Ok(Tnr {
            net_nodes,
            params,
            access: AccessIndex {
                grid,
                access_list,
                cell_first,
                cell_access,
                vertex_first,
                vertex_access_dist,
            },
            ch,
            table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::types::NodeId;
    use spq_synth::SynthParams;

    #[test]
    fn roundtrip_answers_identically() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(500, 77));
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 8,
                ..TnrParams::default()
            },
        );
        let mut buf = Vec::new();
        tnr.write_binary(&mut buf).unwrap();
        let tnr2 = Tnr::read_binary(&net, &mut &buf[..]).unwrap();
        assert_eq!(tnr2.num_access_nodes(), tnr.num_access_nodes());
        let mut q1 = tnr.query();
        let mut q2 = tnr2.query();
        for s in (0..net.num_nodes() as NodeId).step_by(29) {
            for t in (0..net.num_nodes() as NodeId).step_by(37) {
                assert_eq!(q1.distance(s, t), q2.distance(s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn rejects_inconsistent_payloads() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(300, 78));
        let tnr = Tnr::build(
            &net,
            &TnrParams {
                grid: 8,
                ..TnrParams::default()
            },
        );
        let mut buf = Vec::new();
        tnr.write_binary(&mut buf).unwrap();
        buf[1] ^= 0xff;
        assert!(matches!(
            Tnr::read_binary(&net, &mut &buf[..]),
            Err(IndexLoadError::BadMagic { .. })
        ));
        // A bit flip deep in the body trips the outer checksum.
        let mut flipped = Vec::new();
        tnr.write_binary(&mut flipped).unwrap();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            Tnr::read_binary(&net, &mut &flipped[..]),
            Err(IndexLoadError::ChecksumMismatch { .. })
        ));
        // A different network (vertex count) must be rejected.
        let other = spq_synth::generate(&SynthParams::with_target_vertices(400, 79));
        let mut buf2 = Vec::new();
        tnr.write_binary(&mut buf2).unwrap();
        if other.num_nodes() != net.num_nodes() {
            assert!(Tnr::read_binary(&other, &mut &buf2[..]).is_err());
        }
    }
}
