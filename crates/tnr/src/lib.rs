//! Transit Node Routing (TNR), the grid-based vertex-importance index of
//! Bast et al. evaluated as the paper's §3.3 technique.
//!
//! TNR imposes a uniform grid on the network and pre-computes, for every
//! cell `C`, a set of *access nodes*: vertices near the boundary of `C`'s
//! inner shell (the 5×5 square of cells centred at `C`) that cover every
//! shortest path from inside `C` to beyond its outer shell (the 9×9
//! square). Two distance tables — vertex → own-cell access nodes, and
//! access node × access node — then answer any sufficiently non-local
//! distance query with a handful of table lookups (Equation 1). Local
//! queries fall back to an auxiliary method: CH or bidirectional Dijkstra
//! (the paper evaluates both, Appendix E.1).
//!
//! Two details follow the paper specifically:
//!
//! * **Corrected access-node computation.** Bast et al.'s fast
//!   access-node algorithm is flawed — it misses access nodes on edges
//!   that jump across the shells, yielding wrong query answers (paper
//!   Appendix B). This crate implements the paper's corrected method
//!   (shortest paths from each cell vertex to the endpoints of every
//!   outer-shell-crossing edge, accelerated by CH) as the default, and
//!   ships the flawed variant behind
//!   [`AccessNodeStrategy::FlawedBast`] purely to reproduce the
//!   incorrectness demonstration.
//! * **Hybrid grids.** Appendix E.1's two-level combination of a coarse
//!   and a fine grid is provided by [`hybrid::HybridTnr`].
//!
//! # Example
//!
//! ```
//! use spq_synth::SynthParams;
//! use spq_tnr::{Tnr, TnrParams};
//!
//! let net = spq_synth::generate(&SynthParams::with_target_vertices(600, 9));
//! let tnr = Tnr::build(&net, &TnrParams { grid: 16, ..TnrParams::default() });
//! let mut q = tnr.query();
//! let d = q.distance(0, (net.num_nodes() - 1) as u32);
//! assert!(d.is_some());
//! ```

pub mod access;
pub mod hybrid;
pub mod index;
pub mod persist;
pub mod query;

pub use access::AccessNodeStrategy;
pub use index::{Fallback, Tnr, TnrParams};
pub use query::TnrQuery;
