//! Access-node computation (paper §3.3 "Remarks" and Appendix B).

use spq_dijkstra::{Dijkstra, SearchScope};
use spq_graph::geo::Rect;
use spq_graph::grid::VertexGrid;
use spq_graph::types::{NodeId, INVALID_NODE};
use spq_graph::RoadNetwork;

/// Which access-node algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessNodeStrategy {
    /// The paper's corrected method (§3.3, Remarks): for every vertex `v`
    /// in cell `C`, compute the shortest paths from `v` to *both*
    /// endpoints of every edge crossing `C`'s outer shell; on each path,
    /// take the inside endpoint of an inner-shell-crossing edge as an
    /// access node. Complete by construction.
    #[default]
    Correct,
    /// Bast et al.'s flawed selection (Appendix B): only paths to
    /// boundary vertices *inside* the outer region are examined, so an
    /// edge that jumps from within the inner shell to beyond the outer
    /// shell never contributes its access node (the `v5`/`v6`
    /// counterexample of Figure 12(b)). Provided only to reproduce the
    /// paper's incorrectness demonstration.
    FlawedBast,
}

/// The access nodes of one cell, with the search work that produced them.
#[derive(Debug, Default, Clone)]
pub struct CellAccess {
    /// Deduplicated, sorted access-node vertex ids.
    pub nodes: Vec<NodeId>,
}

/// Geometry of a cell's shells in coordinate space.
#[derive(Debug, Clone, Copy)]
pub struct Shells {
    /// Coordinate rectangle of the inner 5×5 square of cells.
    pub inner: Rect,
    /// Coordinate rectangle of the outer 9×9 square of cells.
    pub outer: Rect,
}

/// Computes the shell rectangles of cell index `c`.
pub fn shells_of(grid: &VertexGrid, c: u32, inner_radius: u32, outer_radius: u32) -> Shells {
    let cell = grid.frame().cell_at(c);
    Shells {
        inner: grid.frame().square_around(cell, inner_radius),
        outer: grid.frame().square_around(cell, outer_radius),
    }
}

/// Collects the edges crossing the outer shell of the region `outer`:
/// edges with exactly one endpoint inside the rectangle. Returns the
/// deduplicated endpoint set `Vout` (both endpoints, as the paper's
/// corrected method requires) and, separately, only the inside endpoints
/// (what the flawed method restricts itself to).
pub fn crossing_endpoints(
    net: &RoadNetwork,
    grid: &VertexGrid,
    c: u32,
    outer: &Rect,
    outer_radius: u32,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let cell = grid.frame().cell_at(c);
    let mut both = Vec::new();
    let mut inside_only = Vec::new();
    // Only vertices in cells within the outer square can be inside
    // endpoints of crossing edges.
    for u in grid.vertices_within(cell, outer_radius) {
        if !outer.contains(net.coord(u)) {
            continue;
        }
        for (v, _) in net.neighbors(u) {
            if !outer.contains(net.coord(v)) {
                both.push(u);
                both.push(v);
                inside_only.push(u);
            }
        }
    }
    both.sort_unstable();
    both.dedup();
    inside_only.sort_unstable();
    inside_only.dedup();
    (both, inside_only)
}

/// Computes the access nodes of cell `c` by running one Dijkstra per cell
/// vertex to the target set and harvesting the inner-shell crossings of
/// the canonical shortest-path tree.
///
/// `dijkstra` is a reusable workspace sized for `net`.
pub fn access_nodes_of_cell(
    net: &RoadNetwork,
    grid: &VertexGrid,
    c: u32,
    shells: &Shells,
    strategy: AccessNodeStrategy,
    outer_radius: u32,
    dijkstra: &mut Dijkstra,
) -> CellAccess {
    let (vout_both, vout_inside) = crossing_endpoints(net, grid, c, &shells.outer, outer_radius);
    let targets: &[NodeId] = match strategy {
        AccessNodeStrategy::Correct => &vout_both,
        AccessNodeStrategy::FlawedBast => &vout_inside,
    };
    let mut access = Vec::new();
    if targets.is_empty() {
        // The outer shell swallows the whole network: no shortest path
        // ever leaves it, so the cell needs no access nodes and every
        // query from it uses the fallback method.
        return CellAccess { nodes: access };
    }
    for &v in grid.vertices_in(c) {
        dijkstra.run_to_targets(net, v, targets, SearchScope::Full);
        for &u in targets {
            if !dijkstra.is_settled(u) {
                continue;
            }
            // Walk the canonical path u -> v (via parents) and find the
            // crossing of the inner shell closest to v, i.e. the last
            // index j (from u) with q_j outside and its parent inside.
            let mut cur = u;
            let mut access_node = INVALID_NODE;
            while cur != v {
                let parent = dijkstra
                    .parent(cur)
                    .expect("settled non-source vertices have parents");
                let cur_inside = shells.inner.contains(net.coord(cur));
                let parent_inside = shells.inner.contains(net.coord(parent));
                if !cur_inside && parent_inside {
                    // Crossing edge (parent, cur); inside endpoint wins.
                    access_node = parent;
                }
                cur = parent;
            }
            if access_node != INVALID_NODE {
                access.push(access_node);
            }
        }
    }
    access.sort_unstable();
    access.dedup();
    CellAccess { nodes: access }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::geo::Point;
    use spq_graph::grid::VertexGrid;
    use spq_graph::GraphBuilder;

    /// A 16x16-spread lattice so grid cells are meaningful.
    fn lattice(n_side: i32) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        for y in 0..n_side {
            for x in 0..n_side {
                b.add_node(Point::new(x * 10, y * 10));
            }
        }
        for y in 0..n_side {
            for x in 0..n_side {
                let id = (y * n_side + x) as u32;
                if x + 1 < n_side {
                    b.add_edge(id, id + 1, 10);
                }
                if y + 1 < n_side {
                    b.add_edge(id, id + n_side as u32, 10);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn crossing_endpoints_found_on_lattice() {
        let net = lattice(32);
        let grid = VertexGrid::build(&net, 16);
        // A central cell: its 9×9 outer square is interior, so crossing
        // edges exist.
        let c = grid.cell_index_of((16 * 32 + 16) as u32);
        let shells = shells_of(&grid, c, 2, 4);
        let (both, inside) = crossing_endpoints(&net, &grid, c, &shells.outer, 4);
        assert!(!both.is_empty());
        assert!(!inside.is_empty());
        assert!(
            inside.len() < both.len(),
            "both sides must include outside endpoints"
        );
        // Every inside endpoint is inside; at least one endpoint of
        // `both` lies outside.
        assert!(inside.iter().all(|&v| shells.outer.contains(net.coord(v))));
        assert!(both.iter().any(|&v| !shells.outer.contains(net.coord(v))));
    }

    #[test]
    fn access_nodes_sit_in_the_inner_ring() {
        let net = lattice(32);
        let grid = VertexGrid::build(&net, 16);
        let center = (16 * 32 + 16) as u32;
        let c = grid.cell_index_of(center);
        let shells = shells_of(&grid, c, 2, 4);
        let mut d = Dijkstra::new(net.num_nodes());
        let acc = access_nodes_of_cell(
            &net,
            &grid,
            c,
            &shells,
            AccessNodeStrategy::Correct,
            4,
            &mut d,
        );
        assert!(!acc.nodes.is_empty());
        for &a in &acc.nodes {
            // Inside endpoints of inner-shell crossings lie within the
            // inner square but outside... at least within the inner rect.
            assert!(
                shells.inner.contains(net.coord(a)),
                "access node {a} inside inner shell"
            );
        }
        // On a uniform lattice the access set is far smaller than the
        // cell+ring vertex count — it concentrates on the ring.
        assert!(acc.nodes.len() <= 64, "{} access nodes", acc.nodes.len());
    }

    #[test]
    fn border_cell_with_no_crossings_has_no_access_nodes() {
        // A tiny network entirely inside one outer shell.
        let net = lattice(4);
        let grid = VertexGrid::build(&net, 2);
        let c = grid.cell_index_of(0);
        let shells = shells_of(&grid, c, 2, 4);
        let mut d = Dijkstra::new(net.num_nodes());
        let acc = access_nodes_of_cell(
            &net,
            &grid,
            c,
            &shells,
            AccessNodeStrategy::Correct,
            4,
            &mut d,
        );
        assert!(acc.nodes.is_empty());
    }

    #[test]
    fn flawed_strategy_misses_shell_jumping_access_node() {
        // Rebuild Appendix B's Figure 12(b): vertex v1 inside cell C0,
        // v5 inside the inner shell, v6 beyond the outer shell, with the
        // only v6 connection being the jumping edge (v5, v6). The rest of
        // the network reaches the outside via an ordinary ladder of short
        // edges far from v5.
        let mut b = GraphBuilder::new();
        // Grid geometry: cells of side 10 on a 16x16 grid (coords 0..160).
        // C0 is the cell at (4..8, 4..8)... build explicit coordinates:
        let v1 = b.add_node(Point::new(45, 45)); // inside C0 (cell ~4,4)
        let v5 = b.add_node(Point::new(55, 62)); // inner shell area
        let v6 = b.add_node(Point::new(115, 130)); // beyond outer shell
                                                   // An ordinary path from v1 leaving the region step by step.
        let mut chain = vec![v1];
        for i in 1..=10 {
            chain.push(b.add_node(Point::new(45 + 12 * i, 45)));
        }
        // Far corner anchor to pad the bounding box (so the grid frame is
        // the full 0..160 square).
        let corner1 = b.add_node(Point::new(0, 0));
        let corner2 = b.add_node(Point::new(160, 160));
        for w in chain.windows(2) {
            b.add_edge(w[0], w[1], 12);
        }
        b.add_edge(v1, v5, 20);
        b.add_edge(v5, v6, 95); // the shell-jumping edge
        b.add_edge(*chain.last().unwrap(), corner2, 40);
        b.add_edge(corner1, v1, 64);
        b.add_edge(corner2, v6, 55);
        let net = b.build().unwrap();

        let grid = VertexGrid::build(&net, 16);
        let c = grid.cell_index_of(v1);
        let shells = shells_of(&grid, c, 2, 4);
        assert!(
            shells.inner.contains(net.coord(v5)),
            "v5 must be inside the inner shell"
        );
        assert!(
            !shells.outer.contains(net.coord(v6)),
            "v6 must be beyond the outer shell"
        );

        let mut d = Dijkstra::new(net.num_nodes());
        let correct = access_nodes_of_cell(
            &net,
            &grid,
            c,
            &shells,
            AccessNodeStrategy::Correct,
            4,
            &mut d,
        );
        let flawed = access_nodes_of_cell(
            &net,
            &grid,
            c,
            &shells,
            AccessNodeStrategy::FlawedBast,
            4,
            &mut d,
        );
        assert!(
            correct.nodes.contains(&v5),
            "corrected method must keep v5: {:?}",
            correct.nodes
        );
        assert!(
            !flawed.nodes.contains(&v5),
            "flawed method must miss v5: {:?}",
            flawed.nodes
        );
    }
}
