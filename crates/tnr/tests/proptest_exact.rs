//! Property: TNR with the corrected access-node computation is exact on
//! arbitrary connected graphs, for both fallbacks and random grids.

use proptest::prelude::*;
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::small_connected_network;
use spq_graph::types::NodeId;
use spq_tnr::{Fallback, Tnr, TnrParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn exact_on_arbitrary_graphs(
        net in small_connected_network(),
        grid in 2u32..12,
        fallback_ch in any::<bool>(),
    ) {
        let params = TnrParams {
            grid,
            fallback: if fallback_ch { Fallback::Ch } else { Fallback::BiDijkstra },
            ..TnrParams::default()
        };
        let tnr = Tnr::build(&net, &params);
        let mut q = tnr.query().with_network(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(&net, s);
            for t in 0..net.num_nodes() as NodeId {
                prop_assert_eq!(q.distance(s, t), d.distance(t));
                let (pd, path) = q.shortest_path(s, t).unwrap();
                prop_assert_eq!(Some(pd), d.distance(t));
                prop_assert_eq!(net.path_length(&path), d.distance(t));
            }
        }
    }
}
