//! Property: CH is exact on arbitrary connected positively-weighted
//! graphs — distances equal Dijkstra's, paths are edge-valid and optimal.

use proptest::prelude::*;
use spq_ch::{ChQuery, ContractionHierarchy, LegacyChQuery};
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::small_connected_network;
use spq_graph::types::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_on_arbitrary_graphs(net in small_connected_network()) {
        let ch = ContractionHierarchy::build(&net);
        let mut q = ChQuery::new(&ch);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(&net, s);
            for t in 0..net.num_nodes() as NodeId {
                prop_assert_eq!(q.distance(s, t), d.distance(t));
                let (pd, path) = q.shortest_path(s, t).unwrap();
                prop_assert_eq!(Some(pd), d.distance(t));
                prop_assert_eq!(net.path_length(&path), d.distance(t));
            }
        }
    }

    /// The flat rank-renumbered kernel is a memory-layout change, not an
    /// algorithmic one: on any connected network it must return the same
    /// distances *and the same unpacked vertex sequences* as the legacy
    /// CSR-walking kernel, query for query.
    #[test]
    fn flat_kernel_equals_legacy_kernel(net in small_connected_network()) {
        let ch = ContractionHierarchy::build(&net);
        let mut flat = ChQuery::new(&ch);
        let mut legacy = LegacyChQuery::new(&ch);
        for s in 0..net.num_nodes() as NodeId {
            for t in 0..net.num_nodes() as NodeId {
                prop_assert_eq!(flat.distance(s, t), legacy.distance(s, t));
                prop_assert_eq!(flat.shortest_path(s, t), legacy.shortest_path(s, t));
            }
        }
    }

    #[test]
    fn upward_graph_invariants(net in small_connected_network()) {
        let ch = ContractionHierarchy::build(&net);
        for v in 0..net.num_nodes() as NodeId {
            for (e, h, _) in ch.upward_edges(v) {
                prop_assert!(ch.rank(h) > ch.rank(v));
                let m = ch.edge_middle(e);
                if m != spq_graph::types::INVALID_NODE {
                    // Shortcut halves exist and their weights sum up.
                    let e1 = ch.upward_edge_to(m, v).expect("half (m,v)");
                    let e2 = ch.upward_edge_to(m, h).expect("half (m,h)");
                    prop_assert_eq!(
                        ch.edge_weight(e) as u64,
                        ch.edge_weight(e1) as u64 + ch.edge_weight(e2) as u64
                    );
                }
            }
        }
    }
}
