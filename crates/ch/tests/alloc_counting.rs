//! Allocation accounting for the flat CH query kernel.
//!
//! The serving path promises microsecond-scale distance queries, which
//! dies the moment a query allocates: one heap round trip costs more
//! than an entire small upward search. The kernel's contract is
//! therefore *lazy then never* — a workspace defers its n-sized arrays
//! to the first query, and from then on every distance query runs
//! allocation-free. A counting shim around the system allocator pins
//! both halves of that contract down.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use spq_ch::{ChQuery, ContractionHierarchy};
use spq_graph::toy::grid_graph;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn distance_queries_do_not_allocate_after_warmup() {
    let g = grid_graph(20, 20);
    let ch = ContractionHierarchy::build(&g);
    let n = g.num_nodes() as u32;

    // Construction is lazy: a fresh workspace must not pay the O(n)
    // arrays (a handful of empty-container setup allocations are fine;
    // four n-sized vectors per side are not).
    let before_new = allocations();
    let mut q = ChQuery::new(&ch);
    let after_new = allocations();
    assert!(
        after_new - before_new < 8,
        "ChQuery::new allocated {} times — workspace sizing is not lazy",
        after_new - before_new
    );

    // First query: allocates the workspaces, once.
    assert!(q.distance(0, n - 1).is_some());

    // Steady state: no allocation, whatever the query mix.
    let pairs: Vec<(u32, u32)> = (0..50u32)
        .map(|i| ((i * 37) % n, (i * 151 + 13) % n))
        .collect();
    let before = allocations();
    let mut acc = 0u64;
    for &(s, t) in &pairs {
        acc = acc.wrapping_add(q.distance(s, t).unwrap_or(0));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm distance queries allocated (checksum {acc})"
    );
}
