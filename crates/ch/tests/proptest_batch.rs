//! Property: the batched DISTANCES path is a pure execution-strategy
//! change — on arbitrary connected networks it returns bit-identical
//! answers to the pointwise CH query and to the Dijkstra oracle, for
//! ragged batch shapes (sizes not dividing the lane width) as well as
//! lane-aligned ones, and a budget-interrupted batch never fabricates
//! an entry.

use proptest::prelude::*;
use spq_ch::{ContractionHierarchy, LANES};
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::small_connected_network;
use spq_graph::backend::{Backend, QueryBudget};
use spq_graph::types::NodeId;

/// Endpoint sets carved out of `0..n` with co-prime strides so shapes
/// are ragged with respect to the lane width whenever `n` allows.
fn endpoint_sets(n: usize) -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
    let all: Vec<NodeId> = (0..n as NodeId).collect();
    let mut shapes = vec![
        // Lane-aligned and full.
        (all.clone(), all.clone()),
        // Ragged: strides 3 and 5 rarely produce multiples of LANES.
        (
            all.iter().copied().step_by(3).collect(),
            all.iter().copied().step_by(5).collect(),
        ),
    ];
    // One shape that is ragged by construction: LANES + 1 sources (when
    // the network is big enough), with duplicates in the target list.
    if n > LANES {
        let mut targets: Vec<NodeId> = all.iter().copied().take(5).collect();
        targets.push(targets[0]);
        shapes.push((all.iter().copied().take(LANES + 1).collect(), targets));
    }
    shapes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_distances_bit_identical_to_pointwise_and_oracle(net in small_connected_network()) {
        let ch = ContractionHierarchy::build(&net);
        let mut session = ch.session(&net);
        let mut oracle = Dijkstra::new(net.num_nodes());
        for (sources, targets) in endpoint_sets(net.num_nodes()) {
            let mut out = Vec::new();
            session.distances(&sources, &targets, &mut out);
            prop_assert!(!session.interrupted());
            prop_assert_eq!(out.len(), sources.len() * targets.len());
            for (i, &s) in sources.iter().enumerate() {
                oracle.run(&net, s);
                for (j, &t) in targets.iter().enumerate() {
                    let cell = out[i * targets.len() + j];
                    prop_assert_eq!(cell, oracle.distance(t), "oracle ({}, {})", s, t);
                    prop_assert_eq!(cell, session.distance(s, t), "pointwise ({}, {})", s, t);
                }
            }
        }
    }

    #[test]
    fn interrupted_batch_fabricates_nothing(net in small_connected_network()) {
        let ch = ContractionHierarchy::build(&net);
        let mut session = ch.session(&net);
        let n = net.num_nodes() as NodeId;
        let sources: Vec<NodeId> = (0..n).step_by(2).collect();
        let targets: Vec<NodeId> = (0..n).collect();
        if sources.len() < 2 || targets.len() < 2 {
            return;
        }
        // A one-node cap trips inside the first sweep.
        session.set_budget(QueryBudget::unlimited().with_node_cap(1));
        let mut out = Vec::new();
        session.distances(&sources, &targets, &mut out);
        prop_assert!(session.interrupted());
        prop_assert_eq!(out.len(), sources.len() * targets.len());
        prop_assert!(out.iter().all(Option::is_none), "no fabricated entries");
        // A fresh budget fully recovers the same workspace.
        session.set_budget(QueryBudget::unlimited());
        session.distances(&sources, &targets, &mut out);
        prop_assert!(!session.interrupted());
        let mut oracle = Dijkstra::new(net.num_nodes());
        for (i, &s) in sources.iter().enumerate() {
            oracle.run(&net, s);
            for (j, &t) in targets.iter().enumerate() {
                prop_assert_eq!(out[i * targets.len() + j], oracle.distance(t));
            }
        }
    }
}
