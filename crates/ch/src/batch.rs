//! Batched multi-source distance tables: structure-of-arrays lanes over
//! the flat upward search graph.
//!
//! [`ManyToMany`](crate::ManyToMany) answers a `sources × targets` table
//! with one upward Dijkstra per endpoint. Those searches repeat each
//! other's work: CH upward search spaces overlap heavily near the top of
//! the hierarchy, so the same high-rank vertices are popped and the same
//! up-edges relaxed once per endpoint. [`BatchDistances`] amortises that
//! by sweeping [`LANES`] endpoints at once.
//!
//! The trick that makes a *multi-source* sweep cheap is that the upward
//! graph is a DAG in rank order: every up-edge of the flat
//! [`SearchGraph`] points to a strictly higher rank. Processing touched
//! ranks in ascending order therefore settles every lane's distance in
//! one pass — when rank `r` is popped, any edge into `r` starts at a
//! strictly lower rank, and lower ranks can only be touched before `r`
//! is popped (seeding happens up front and relaxation only ever touches
//! higher ranks). No decrease-key, no per-lane priority queue: one
//! monotone rank heap drives all lanes.
//!
//! Distances live in a structure-of-arrays slab: `lane[r * LANES + k]`
//! is lane `k`'s tentative distance to rank `r`. The inner relax loop
//! runs over the `LANES` contiguous entries of one slab with no
//! branches besides the min — the shape auto-vectorisers like. Lanes
//! that never reached `r` sit at [`INFINITY`] and are carried along
//! harmlessly ([`INFINITY`]` + w` stays above [`INFINITY`], below
//! `u64::MAX`).
//!
//! Targets are prepared with the same sweep (road networks are
//! undirected, so the backward upward search is the forward one),
//! depositing `(target, dist)` pairs in per-rank buckets exactly like
//! [`ManyToMany`](crate::ManyToMany); the source sweep then combines at
//! shared ranks. The whole workspace is allocation-free across calls:
//! version stamps invalidate the slab, touched buckets are drained.
//!
//! Exactness is CH's theorem unchanged — exhaustive upward spaces from
//! both endpoints meet at the apex of a shortest path — and distances
//! are integral, so the table is bit-identical to pointwise
//! [`ChQuery`](crate::ChQuery) answers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use spq_graph::backend::QueryBudget;
use spq_graph::types::{Dist, NodeId, INFINITY};

use crate::contraction::ContractionHierarchy;
use crate::search_graph::SearchGraph;

/// Sources (or targets) swept together. Eight 8-byte distance lanes fill
/// one 64-byte cache line per rank slab, the widest shape that keeps a
/// slab on a single line.
pub const LANES: usize = 8;

/// Reusable batched-table workspace bound to one hierarchy.
pub struct BatchDistances<'a> {
    sg: &'a SearchGraph,
    /// SoA distance slab: `lane[r * LANES + k]`, valid while
    /// `stamp[r] == version`.
    lane: Vec<Dist>,
    stamp: Vec<u32>,
    version: u32,
    /// Monotone rank frontier for the current sweep: each touched rank
    /// is pushed exactly once (when first stamped) and popped in
    /// ascending order.
    frontier: BinaryHeap<Reverse<u32>>,
    /// Ranks settled by the most recent sweep, in pop (ascending) order.
    settled: Vec<u32>,
    /// `buckets[r]` holds `(target_index, dist(r ↑ target))`.
    buckets: Vec<Vec<(u32, Dist)>>,
    touched_buckets: Vec<u32>,
    prepared: usize,
    /// Endpoint indices sorted by rank (chunking scratch).
    order: Vec<u32>,
    budget: QueryBudget,
}

impl<'a> BatchDistances<'a> {
    /// Creates a workspace bound to `ch`. Allocation is lazy where it
    /// can be: the slab is sized up front (it is the workspace).
    pub fn new(ch: &'a ContractionHierarchy) -> Self {
        let sg = ch.search_graph();
        let n = sg.num_nodes();
        BatchDistances {
            sg,
            lane: vec![INFINITY; n * LANES],
            stamp: vec![0; n],
            version: 0,
            frontier: BinaryHeap::new(),
            settled: Vec::new(),
            buckets: vec![Vec::new(); n],
            touched_buckets: Vec::new(),
            prepared: 0,
            order: Vec::new(),
            budget: QueryBudget::unlimited(),
        }
    }

    /// Installs the budget charged by subsequent sweeps (one charge per
    /// settled rank, mirroring the pointwise kernel's per-pop charge).
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether the most recent table computation tripped its budget.
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted()
    }

    /// One multi-source upward sweep from `roots` (rank space, one per
    /// lane). Fills the slab for every reached rank and records the
    /// settled ranks in ascending order. Returns `false` if the budget
    /// tripped mid-sweep (the slab is then incomplete and must not be
    /// read).
    fn sweep(&mut self, roots: &[u32]) -> bool {
        debug_assert!(!roots.is_empty() && roots.len() <= LANES);
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.frontier.clear();
        self.settled.clear();
        for (k, &r) in roots.iter().enumerate() {
            let slab = r as usize * LANES;
            if self.stamp[r as usize] != version {
                self.stamp[r as usize] = version;
                self.lane[slab..slab + LANES].fill(INFINITY);
                self.frontier.push(Reverse(r));
            }
            self.lane[slab + k] = 0;
        }
        while let Some(Reverse(r)) = self.frontier.pop() {
            if !self.budget.charge() {
                return false;
            }
            self.settled.push(r);
            let src = r as usize * LANES;
            for e in self.sg.up(r) {
                let w = e.weight as Dist;
                let t = e.target as usize;
                debug_assert!(t > r as usize, "up-edges ascend in rank");
                if self.stamp[t] != version {
                    self.stamp[t] = version;
                    self.lane[t * LANES..t * LANES + LANES].fill(INFINITY);
                    self.frontier.push(Reverse(e.target));
                }
                // Split at the target slab: the source slab is strictly
                // below it (ranks ascend along up-edges), so both halves
                // borrow disjointly.
                let (lo, hi) = self.lane.split_at_mut(t * LANES);
                let from = &lo[src..src + LANES];
                let to = &mut hi[..LANES];
                for k in 0..LANES {
                    let nd = from[k] + w;
                    if nd < to[k] {
                        to[k] = nd;
                    }
                }
            }
        }
        true
    }

    /// Phase 1: deposits every target's upward search space into the
    /// per-rank buckets, [`LANES`] targets per sweep. Returns `false` on
    /// budget trip.
    fn prepare_targets(&mut self, targets: &[NodeId]) -> bool {
        for r in self.touched_buckets.drain(..) {
            self.buckets[r as usize].clear();
        }
        self.prepared = targets.len();
        self.order.clear();
        self.order.extend(0..targets.len() as u32);
        let sg = self.sg;
        self.order.sort_by_key(|&j| sg.rank_of(targets[j as usize]));
        let order = std::mem::take(&mut self.order);
        let mut ok = true;
        'chunks: for chunk in order.chunks(LANES) {
            let roots: Vec<u32> = chunk
                .iter()
                .map(|&j| self.sg.rank_of(targets[j as usize]))
                .collect();
            if !self.sweep(&roots) {
                ok = false;
                break 'chunks;
            }
            for si in 0..self.settled.len() {
                let r = self.settled[si];
                let slab = r as usize * LANES;
                for (k, &j) in chunk.iter().enumerate() {
                    let d = self.lane[slab + k];
                    if d < INFINITY {
                        let bucket = &mut self.buckets[r as usize];
                        if bucket.is_empty() {
                            self.touched_buckets.push(r);
                        }
                        bucket.push((j, d));
                    }
                }
            }
        }
        self.order = order;
        ok
    }

    /// Computes the row-major `sources × targets` table into `out`
    /// (resized to `sources.len() * targets.len()`, [`INFINITY`] for
    /// unreachable pairs). Returns `false` — with `out` cleared, so no
    /// fabricated entries survive — if the budget tripped.
    pub fn table_into(
        &mut self,
        sources: &[NodeId],
        targets: &[NodeId],
        out: &mut Vec<Dist>,
    ) -> bool {
        let m = targets.len();
        out.clear();
        if sources.is_empty() || m == 0 {
            return true;
        }
        if !self.prepare_targets(targets) {
            return false;
        }
        out.resize(sources.len() * m, INFINITY);
        self.order.clear();
        self.order.extend(0..sources.len() as u32);
        let sg = self.sg;
        self.order.sort_by_key(|&i| sg.rank_of(sources[i as usize]));
        let order = std::mem::take(&mut self.order);
        let mut ok = true;
        'chunks: for chunk in order.chunks(LANES) {
            let roots: Vec<u32> = chunk
                .iter()
                .map(|&i| self.sg.rank_of(sources[i as usize]))
                .collect();
            if !self.sweep(&roots) {
                ok = false;
                break 'chunks;
            }
            for si in 0..self.settled.len() {
                let r = self.settled[si];
                let bucket = &self.buckets[r as usize];
                if bucket.is_empty() {
                    continue;
                }
                let slab = r as usize * LANES;
                for (k, &i) in chunk.iter().enumerate() {
                    let d = self.lane[slab + k];
                    if d >= INFINITY {
                        continue;
                    }
                    let row = &mut out[i as usize * m..i as usize * m + m];
                    for &(j, dt) in bucket {
                        let total = d + dt;
                        if total < row[j as usize] {
                            row[j as usize] = total;
                        }
                    }
                }
            }
        }
        self.order = order;
        if !ok {
            out.clear();
        }
        ok
    }

    /// Convenience wrapper over [`BatchDistances::table_into`]: `None`
    /// when the budget tripped.
    pub fn table(&mut self, sources: &[NodeId], targets: &[NodeId]) -> Option<Vec<Dist>> {
        let mut out = Vec::new();
        if self.table_into(sources, targets, &mut out) {
            Some(out)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::many2many::ManyToMany;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};

    #[test]
    fn table_matches_many_to_many_and_dijkstra() {
        let g = grid_graph(9, 7);
        let ch = ContractionHierarchy::build(&g);
        let sources: Vec<u32> = (0..17).collect();
        let targets: Vec<u32> = (40..63).collect();
        let batched = BatchDistances::new(&ch)
            .table(&sources, &targets)
            .expect("no budget");
        let bucketed = ManyToMany::new(&ch).table(&sources, &targets);
        assert_eq!(batched, bucketed, "bit-identical to the bucket kernel");
        let mut d = Dijkstra::new(g.num_nodes());
        for (i, &s) in sources.iter().enumerate() {
            d.run(&g, s);
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    batched[i * targets.len() + j],
                    d.distance(t).unwrap(),
                    "pair ({s},{t})"
                );
            }
        }
    }

    #[test]
    fn ragged_chunks_and_duplicates_are_exact() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut batch = BatchDistances::new(&ch);
        // 3 sources (one duplicated) and 5 targets: neither divides
        // LANES, and lanes seeded at the same rank must stay independent.
        let sources = [0u32, 4, 0];
        let targets = [1u32, 3, 5, 7, 1];
        let table = batch.table(&sources, &targets).expect("no budget");
        let mut d = Dijkstra::new(g.num_nodes());
        for (i, &s) in sources.iter().enumerate() {
            d.run(&g, s);
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(table[i * targets.len() + j], d.distance(t).unwrap());
            }
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = grid_graph(6, 6);
        let ch = ContractionHierarchy::build(&g);
        let mut batch = BatchDistances::new(&ch);
        let a = batch.table(&[0, 7], &[30, 35]).unwrap();
        let _ = batch.table(&[35], &[0]).unwrap(); // different shape in between
        let b = batch.table(&[0, 7], &[30, 35]).unwrap();
        assert_eq!(a, b, "stale buckets or stamps would corrupt the rerun");
    }

    #[test]
    fn budget_trip_returns_no_entries() {
        let g = grid_graph(10, 10);
        let ch = ContractionHierarchy::build(&g);
        let mut batch = BatchDistances::new(&ch);
        batch.set_budget(QueryBudget::unlimited().with_node_cap(3));
        let mut out = vec![42; 4];
        let sources: Vec<u32> = (0..8).collect();
        let targets: Vec<u32> = (90..98).collect();
        assert!(!batch.table_into(&sources, &targets, &mut out));
        assert!(batch.budget_exhausted());
        assert!(out.is_empty(), "a tripped batch must not fabricate entries");
        // A fresh budget restores full service on the same workspace.
        batch.set_budget(QueryBudget::unlimited());
        let full = batch.table(&sources, &targets).unwrap();
        assert_eq!(full, ManyToMany::new(&ch).table(&sources, &targets));
    }

    #[test]
    fn empty_shapes_are_fine() {
        let g = grid_graph(3, 3);
        let ch = ContractionHierarchy::build(&g);
        let mut batch = BatchDistances::new(&ch);
        assert_eq!(batch.table(&[], &[1]).unwrap(), Vec::<Dist>::new());
        assert_eq!(batch.table(&[1], &[]).unwrap(), Vec::<Dist>::new());
    }
}
