//! The original CSR-walking CH query kernel, kept as the reference
//! implementation.
//!
//! [`LegacyChQuery`] searches the hierarchy's upward graph directly in
//! original-id space, exactly as the first version of this crate did.
//! The flat kernel ([`crate::ChQuery`]) must agree with it query for
//! query — the equivalence proptests pin that down — and the benches
//! report the speedup of the rank-renumbered layout against it. It is
//! not wired into any backend.

use spq_graph::backend::QueryBudget;
use spq_graph::heap::IndexedHeap;
use spq_graph::types::{Dist, NodeId, INFINITY, INVALID_NODE};

use crate::contraction::ContractionHierarchy;

const NO_EDGE: u32 = u32::MAX;

/// One direction's workspace of the bidirectional upward search. Eagerly
/// sized (four n-length vectors at construction) — the allocation
/// behaviour the flat kernel's lazy workspaces were built to avoid.
#[derive(Debug, Clone)]
struct Side {
    dist: Vec<Dist>,
    /// Upward-edge index that discovered each vertex (for path retrieval).
    parent_edge: Vec<u32>,
    parent: Vec<NodeId>,
    stamp: Vec<u32>,
    heap: IndexedHeap,
}

impl Side {
    fn new(n: usize) -> Self {
        Side {
            dist: vec![INFINITY; n],
            parent_edge: vec![NO_EDGE; n],
            parent: vec![INVALID_NODE; n],
            stamp: vec![0; n],
            heap: IndexedHeap::new(n),
        }
    }

    fn begin(&mut self, root: NodeId, version: u32) {
        self.heap.clear();
        self.dist[root as usize] = 0;
        self.parent_edge[root as usize] = NO_EDGE;
        self.parent[root as usize] = INVALID_NODE;
        self.stamp[root as usize] = version;
        self.heap.push_or_decrease(root, 0);
    }

    #[inline]
    fn reached(&self, v: NodeId, version: u32) -> bool {
        self.stamp[v as usize] == version
    }
}

/// The reference CH query workspace: §3.2's modified bidirectional
/// Dijkstra walking the original-id upward CSR. See [`crate::ChQuery`]
/// for the production kernel and the algorithm commentary.
#[derive(Debug, Clone)]
pub struct LegacyChQuery<'a> {
    ch: &'a ContractionHierarchy,
    fwd: Side,
    bwd: Side,
    version: u32,
    /// Enables the stall-on-demand optimisation.
    pub stall_on_demand: bool,
    /// Vertices settled by the most recent query.
    pub last_settled: usize,
    /// Scratch stack for shortcut unpacking.
    unpack_stack: Vec<(NodeId, NodeId, u32)>,
    budget: QueryBudget,
}

impl<'a> LegacyChQuery<'a> {
    /// Creates a workspace bound to `ch`.
    pub fn new(ch: &'a ContractionHierarchy) -> Self {
        let n = ch.num_nodes();
        LegacyChQuery {
            ch,
            fwd: Side::new(n),
            bwd: Side::new(n),
            version: 0,
            stall_on_demand: true,
            last_settled: 0,
            unpack_stack: Vec::new(),
            budget: QueryBudget::unlimited(),
        }
    }

    /// Installs the cancellation budget subsequent queries run under.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether a query since the last [`LegacyChQuery::set_budget`] was
    /// cut short by the budget.
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted()
    }

    /// Distance query (§2): length of the shortest s–t path.
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.search(s, t).map(|(d, _)| d)
    }

    /// Shortest-path query (§2): distance plus the full vertex sequence
    /// in the original network, with all shortcuts unpacked.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        let (d, meet) = self.search(s, t)?;
        let mut path = vec![s];
        let mut fwd_edges = Vec::new();
        let mut cur = meet;
        while cur != s {
            let e = self.fwd.parent_edge[cur as usize];
            let from = self.fwd.parent[cur as usize];
            fwd_edges.push((from, cur, e));
            cur = from;
        }
        fwd_edges.reverse();
        for (from, to, e) in fwd_edges {
            self.append_unpacked(from, to, e, &mut path);
        }
        let mut cur = meet;
        while cur != t {
            let e = self.bwd.parent_edge[cur as usize];
            let to = self.bwd.parent[cur as usize];
            self.append_unpacked(cur, to, e, &mut path);
            cur = to;
        }
        Some((d, path))
    }

    /// Appends the expansion of hierarchy edge `e` (known to connect
    /// `from` to `to`, in that travel direction) to `path`, excluding
    /// `from` itself.
    fn append_unpacked(&mut self, from: NodeId, to: NodeId, e: u32, path: &mut Vec<NodeId>) {
        debug_assert_eq!(path.last().copied(), Some(from));
        self.unpack_stack.clear();
        self.unpack_stack.push((from, to, e));
        while let Some((a, b, e)) = self.unpack_stack.pop() {
            let m = self.ch.edge_middle(e);
            if m == INVALID_NODE {
                path.push(b);
            } else {
                let e1 = self
                    .ch
                    .upward_edge_to(m, a)
                    .expect("shortcut half (m, a) must exist in the hierarchy");
                let e2 = self
                    .ch
                    .upward_edge_to(m, b)
                    .expect("shortcut half (m, b) must exist in the hierarchy");
                self.unpack_stack.push((m, b, e2));
                self.unpack_stack.push((a, m, e1));
            }
        }
    }

    /// The bidirectional upward search. Returns `(distance, meeting
    /// vertex)`.
    fn search(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, NodeId)> {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.fwd.stamp.fill(0);
            self.bwd.stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.last_settled = 0;
        self.fwd.begin(s, version);
        self.bwd.begin(t, version);
        if s == t {
            return Some((0, s));
        }

        let mut mu = INFINITY;
        let mut meet = INVALID_NODE;
        loop {
            let ftop = self.fwd.heap.peek_key().unwrap_or(INFINITY);
            let btop = self.bwd.heap.peek_key().unwrap_or(INFINITY);
            if ftop.min(btop) >= mu {
                break;
            }
            let side_is_fwd = if ftop >= mu {
                false
            } else if btop >= mu {
                true
            } else {
                ftop <= btop
            };
            let (this, other) = if side_is_fwd {
                (&mut self.fwd, &mut self.bwd)
            } else {
                (&mut self.bwd, &mut self.fwd)
            };
            if !self.budget.charge() {
                return None;
            }
            let Some((d, u)) = this.heap.pop_min() else {
                break;
            };
            self.last_settled += 1;

            if other.reached(u, version) {
                let total = d + other.dist[u as usize];
                if total < mu {
                    mu = total;
                    meet = u;
                }
            }

            if self.stall_on_demand {
                let mut stalled = false;
                for (_, h, w) in self.ch.upward_edges(u) {
                    if this.reached(h, version) && this.dist[h as usize] + (w as Dist) < d {
                        stalled = true;
                        break;
                    }
                }
                if stalled {
                    continue;
                }
            }

            for (e, h, w) in self.ch.upward_edges(u) {
                let nd = d + w as Dist;
                let hi = h as usize;
                if this.stamp[hi] != version || nd < this.dist[hi] {
                    this.dist[hi] = nd;
                    this.parent[hi] = u;
                    this.parent_edge[hi] = e;
                    this.stamp[hi] = version;
                    this.heap.push_or_decrease(h, nd);
                }
            }
        }

        if meet == INVALID_NODE {
            None
        } else {
            Some((mu, meet))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    #[test]
    fn figure1_worked_example() {
        let g = figure1();
        let ch = ContractionHierarchy::build_with_order(&g, &(0..8).collect::<Vec<_>>());
        let mut q = LegacyChQuery::new(&ch);
        assert_eq!(q.distance(2, 6), Some(6));
        let (_, path) = q.shortest_path(2, 6).unwrap();
        assert_eq!(path, vec![2, 0, 7, 5, 4, 6]);
    }

    #[test]
    fn all_pairs_on_figure1() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut q = LegacyChQuery::new(&ch);
        let mut d = spq_dijkstra::Dijkstra::new(g.num_nodes());
        for s in 0..8u32 {
            d.run(&g, s);
            for t in 0..8u32 {
                assert_eq!(q.distance(s, t), d.distance(t), "({s},{t})");
                let (dist, path) = q.shortest_path(s, t).unwrap();
                assert_eq!(g.path_length(&path), Some(dist));
            }
        }
    }
}
