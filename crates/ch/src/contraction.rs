//! The contraction process: witness searches, shortcut insertion, and the
//! frozen hierarchy.

use spq_graph::heap::IndexedHeap;
use spq_graph::par;
use spq_graph::size::IndexSize;
use spq_graph::types::{Dist, NodeId, Weight, INFINITY, INVALID_NODE};
use spq_graph::RoadNetwork;

use crate::ordering::{OrderingState, PriorityWeights};
use crate::search_graph::SearchGraph;

/// Order-preserving map from an `i64` contraction priority to the
/// unsigned key space of [`IndexedHeap`] (flip the sign bit).
#[inline]
fn prio_key(p: i64) -> u64 {
    (p as u64) ^ (1 << 63)
}

/// Inverse of [`prio_key`].
#[inline]
fn key_prio(k: u64) -> i64 {
    (k ^ (1 << 63)) as i64
}

/// Tuning knobs of the contraction process.
#[derive(Debug, Clone, Copy)]
pub struct ChParams {
    /// Priority formula coefficients.
    pub priority: PriorityWeights,
    /// Witness searches stop after settling this many vertices. A smaller
    /// limit speeds preprocessing but may insert superfluous shortcuts
    /// (never incorrect ones).
    pub witness_settle_limit: usize,
}

impl Default for ChParams {
    fn default() -> Self {
        ChParams {
            priority: PriorityWeights::default(),
            witness_settle_limit: 64,
        }
    }
}

/// One edge of the remaining ("overlay") graph during contraction, or of
/// the frozen upward graph. `middle` is the contracted vertex a shortcut
/// replaces — the *tag* of §3.2 — or `INVALID_NODE` for original edges.
#[derive(Debug, Clone, Copy)]
struct OEdge {
    to: NodeId,
    weight: Weight,
    middle: NodeId,
}

/// The mutable remaining graph.
struct Overlay {
    adj: Vec<Vec<OEdge>>,
    contracted: Vec<bool>,
}

impl Overlay {
    fn from_network(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        let mut adj = vec![Vec::new(); n];
        for v in 0..n as NodeId {
            adj[v as usize] = net
                .neighbors(v)
                .map(|(to, weight)| OEdge {
                    to,
                    weight,
                    middle: INVALID_NODE,
                })
                .collect();
        }
        Overlay {
            adj,
            contracted: vec![false; n],
        }
    }

    /// Live neighbours of `v` (skipping contracted endpoints).
    fn live_edges<'a>(&'a self, v: NodeId) -> impl Iterator<Item = OEdge> + 'a {
        self.adj[v as usize]
            .iter()
            .copied()
            .filter(|e| !self.contracted[e.to as usize])
    }

    /// Inserts or improves the undirected edge {u, w}.
    fn upsert(&mut self, u: NodeId, w: NodeId, weight: Weight, middle: NodeId) {
        for (a, b) in [(u, w), (w, u)] {
            match self.adj[a as usize].iter_mut().find(|e| e.to == b) {
                Some(e) => {
                    if weight < e.weight {
                        e.weight = weight;
                        e.middle = middle;
                    }
                }
                None => self.adj[a as usize].push(OEdge {
                    to: b,
                    weight,
                    middle,
                }),
            }
        }
    }
}

/// A bounded Dijkstra over the overlay used to find *witness paths*:
/// contracting `v`, a shortcut (u, w) is unnecessary iff some path from u
/// to w avoiding v is no longer than via v.
struct WitnessSearch {
    dist: Vec<Dist>,
    stamp: Vec<u32>,
    version: u32,
    heap: IndexedHeap,
}

impl WitnessSearch {
    fn new(n: usize) -> Self {
        WitnessSearch {
            dist: vec![INFINITY; n],
            stamp: vec![0; n],
            version: 0,
            heap: IndexedHeap::new(n),
        }
    }

    /// Runs from `source` over the overlay, skipping `excluded` and all
    /// contracted vertices, up to `cutoff` distance and `settle_limit`
    /// settles. Afterwards [`WitnessSearch::distance`] answers for any
    /// vertex reached within those bounds.
    fn run(
        &mut self,
        overlay: &Overlay,
        source: NodeId,
        excluded: NodeId,
        cutoff: Dist,
        settle_limit: usize,
    ) {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.stamp.fill(0);
            self.version = 1;
        }
        self.heap.clear();
        self.dist[source as usize] = 0;
        self.stamp[source as usize] = self.version;
        self.heap.push_or_decrease(source, 0);
        let mut settled = 0usize;
        while let Some((d, u)) = self.heap.pop_min() {
            debug_assert_eq!(d, self.dist_of(u)); // decrease-key: never stale
            settled += 1;
            if settled > settle_limit || d > cutoff {
                break;
            }
            for e in overlay.live_edges(u) {
                if e.to == excluded {
                    continue;
                }
                let nd = d + e.weight as Dist;
                if nd <= cutoff && nd < self.dist_of(e.to) {
                    self.dist[e.to as usize] = nd;
                    self.stamp[e.to as usize] = self.version;
                    self.heap.push_or_decrease(e.to, nd);
                }
            }
        }
    }

    #[inline]
    fn dist_of(&self, v: NodeId) -> Dist {
        if self.stamp[v as usize] == self.version {
            self.dist[v as usize]
        } else {
            INFINITY
        }
    }

    /// Distance found by the last run (may be an overestimate if the
    /// bounded search gave up — that is safe: it only adds shortcuts).
    #[inline]
    fn distance(&self, v: NodeId) -> Dist {
        self.dist_of(v)
    }
}

/// The frozen Contraction Hierarchies index.
///
/// Stores the total order (as ranks) and, per vertex, its *upward* edges:
/// the overlay edges it had at the moment it was contracted, all of which
/// lead to higher-ranked vertices. Queries search only this upward graph;
/// shortcuts carry their middle-vertex tag for unpacking.
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    /// Position of each vertex in the total order (0 = contracted first).
    rank: Box<[u32]>,
    up_first: Box<[u32]>,
    up_head: Box<[NodeId]>,
    up_weight: Box<[Weight]>,
    up_middle: Box<[NodeId]>,
    num_shortcuts: usize,
    /// The flattened rank-renumbered layout the query kernels run on,
    /// derived deterministically from the arrays above.
    search: SearchGraph,
}

impl ContractionHierarchy {
    /// Builds with default parameters and the heuristic node order.
    pub fn build(net: &RoadNetwork) -> Self {
        Self::build_with_params(net, &ChParams::default())
    }

    /// Builds with explicit parameters.
    pub fn build_with_params(net: &RoadNetwork, params: &ChParams) -> Self {
        let n = net.num_nodes();
        let mut overlay = Overlay::from_network(net);
        let mut state = OrderingState::new(n, params.priority);

        // Initial lazy priority queue. One witness-search simulation per
        // vertex over the read-only starting overlay — the dominant cost
        // of ordering on large networks, and embarrassingly parallel:
        // each worker gets its own search workspace, results come back
        // in vertex order, so the queue is built from the same sequence
        // regardless of the thread count.
        let initial = par::par_map_index(
            n,
            || (WitnessSearch::new(n), Vec::new(), Vec::new()),
            |(witness, neighbors, shortcuts), v| {
                let v = v as NodeId;
                let inc = simulate(
                    &overlay,
                    witness,
                    v,
                    params.witness_settle_limit,
                    neighbors,
                    shortcuts,
                );
                state.priority(v, shortcuts.len(), inc)
            },
        );
        // The queue holds each vertex exactly once (update-in-place
        // instead of the duplicate-entry push a `BinaryHeap` would
        // need), so the lazy-update loop below never allocates.
        let mut queue: IndexedHeap = IndexedHeap::new(n);
        for (v, &p) in initial.iter().enumerate() {
            queue.push_or_update(v as NodeId, prio_key(p));
        }

        let mut witness = WitnessSearch::new(n);
        let mut neighbors = Vec::new();
        let mut shortcuts = Vec::new();

        let mut order = Vec::with_capacity(n);
        let mut upward: Vec<Vec<OEdge>> = vec![Vec::new(); n];
        let mut num_shortcuts = 0usize;
        while let Some((key, v)) = queue.pop_min() {
            debug_assert!(!overlay.contracted[v as usize]);
            let prio = key_prio(key);
            // Lazy update: recompute; if no longer minimal, requeue.
            let incident = simulate(
                &overlay,
                &mut witness,
                v,
                params.witness_settle_limit,
                &mut neighbors,
                &mut shortcuts,
            );
            let fresh = state.priority(v, shortcuts.len(), incident);
            if fresh > prio {
                if let Some(top) = queue.peek_key() {
                    if prio_key(fresh) > top {
                        queue.push_or_update(v, prio_key(fresh));
                        continue;
                    }
                }
            }

            // Contract v: freeze its upward edges, insert its shortcuts.
            upward[v as usize] = overlay.live_edges(v).collect();
            overlay.contracted[v as usize] = true;
            for &(u, w, weight) in &shortcuts {
                overlay.upsert(u, w, weight, v);
                num_shortcuts += 1;
            }
            for e in &upward[v as usize] {
                state.on_contract_neighbor(v, e.to);
            }
            order.push(v);
        }
        debug_assert_eq!(order.len(), n);

        Self::freeze(n, &order, upward, num_shortcuts)
    }

    /// Builds using an explicit contraction order (`order[0]` contracted
    /// first). Used by tests to replay the paper's worked example and by
    /// ablation benches.
    pub fn build_with_order(net: &RoadNetwork, order: &[NodeId]) -> Self {
        let n = net.num_nodes();
        assert_eq!(order.len(), n, "order must mention every vertex once");
        let params = ChParams::default();
        let mut overlay = Overlay::from_network(net);
        let mut witness = WitnessSearch::new(n);
        let mut neighbors = Vec::new();
        let mut shortcuts = Vec::new();
        let mut upward: Vec<Vec<OEdge>> = vec![Vec::new(); n];
        let mut num_shortcuts = 0usize;
        for &v in order {
            assert!(!overlay.contracted[v as usize], "duplicate in order");
            simulate(
                &overlay,
                &mut witness,
                v,
                params.witness_settle_limit,
                &mut neighbors,
                &mut shortcuts,
            );
            upward[v as usize] = overlay.live_edges(v).collect();
            overlay.contracted[v as usize] = true;
            for &(u, w, weight) in &shortcuts {
                overlay.upsert(u, w, weight, v);
                num_shortcuts += 1;
            }
        }
        Self::freeze(n, order, upward, num_shortcuts)
    }

    fn freeze(n: usize, order: &[NodeId], upward: Vec<Vec<OEdge>>, num_shortcuts: usize) -> Self {
        let mut rank = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        let mut up_first = vec![0u32; n + 1];
        for v in 0..n {
            up_first[v + 1] = up_first[v] + upward[v].len() as u32;
        }
        let total = up_first[n] as usize;
        let mut up_head = vec![0 as NodeId; total];
        let mut up_weight = vec![0 as Weight; total];
        let mut up_middle = vec![INVALID_NODE; total];
        for v in 0..n {
            let base = up_first[v] as usize;
            // Sorting by target rank descending helps queries terminate
            // earlier; sorting by anything fixed keeps builds deterministic.
            let mut edges = upward[v].clone();
            edges.sort_unstable_by_key(|e| (rank[e.to as usize], e.to));
            for (i, e) in edges.iter().enumerate() {
                debug_assert!(rank[e.to as usize] > rank[v], "upward edge must ascend");
                up_head[base + i] = e.to;
                up_weight[base + i] = e.weight;
                up_middle[base + i] = e.middle;
            }
        }
        let search = SearchGraph::build(&rank, &up_first, &up_head, &up_weight, &up_middle);
        ContractionHierarchy {
            rank: rank.into_boxed_slice(),
            up_first: up_first.into_boxed_slice(),
            up_head: up_head.into_boxed_slice(),
            up_weight: up_weight.into_boxed_slice(),
            up_middle: up_middle.into_boxed_slice(),
            num_shortcuts,
            search,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.rank.len()
    }

    /// Rank of `v` in the total order (0 = least important).
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Total number of shortcuts inserted during preprocessing.
    #[inline]
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Number of upward edges (original + shortcut) in the search graph.
    #[inline]
    pub fn num_upward_edges(&self) -> usize {
        self.up_head.len()
    }

    /// Upward edges of `v` as `(edge_index, head, weight)`.
    #[inline]
    pub fn upward_edges(&self, v: NodeId) -> impl Iterator<Item = (u32, NodeId, Weight)> + '_ {
        let lo = self.up_first[v as usize];
        let hi = self.up_first[v as usize + 1];
        (lo..hi).map(move |e| (e, self.up_head[e as usize], self.up_weight[e as usize]))
    }

    /// The middle-vertex tag of upward edge `e` (`INVALID_NODE` for an
    /// original road edge).
    #[inline]
    pub fn edge_middle(&self, e: u32) -> NodeId {
        self.up_middle[e as usize]
    }

    /// Head of upward edge `e`.
    #[inline]
    pub fn edge_head(&self, e: u32) -> NodeId {
        self.up_head[e as usize]
    }

    /// Weight of upward edge `e`.
    #[inline]
    pub fn edge_weight(&self, e: u32) -> Weight {
        self.up_weight[e as usize]
    }

    /// Finds the upward edge from `v` to `to`, if present (unique after
    /// deduplication). Used by shortcut unpacking.
    pub fn upward_edge_to(&self, v: NodeId, to: NodeId) -> Option<u32> {
        self.upward_edges(v)
            .find(|&(_, h, _)| h == to)
            .map(|(e, _, _)| e)
    }

    /// Raw arrays for persistence: `(rank, up_first, up_head, up_weight,
    /// up_middle)`.
    pub(crate) fn raw_parts(&self) -> RawParts<'_> {
        (
            &self.rank,
            &self.up_first,
            &self.up_head,
            &self.up_weight,
            &self.up_middle,
        )
    }

    /// Rebuilds a hierarchy from persisted arrays, validating structural
    /// invariants (CSR shape, rank permutation, ascending edges).
    pub(crate) fn from_raw_parts(
        rank: Vec<u32>,
        up_first: Vec<u32>,
        up_head: Vec<NodeId>,
        up_weight: Vec<Weight>,
        up_middle: Vec<NodeId>,
        num_shortcuts: usize,
    ) -> Result<Self, String> {
        let n = rank.len();
        if up_first.len() != n + 1 {
            return Err("up_first length must be n + 1".into());
        }
        let arcs = *up_first.last().unwrap_or(&0) as usize;
        if up_head.len() != arcs || up_weight.len() != arcs || up_middle.len() != arcs {
            return Err("edge section lengths disagree".into());
        }
        if up_first.windows(2).any(|w| w[0] > w[1]) {
            return Err("up_first must be non-decreasing".into());
        }
        let mut seen = vec![false; n];
        for &r in &rank {
            let r = r as usize;
            if r >= n || seen[r] {
                return Err("rank is not a permutation".into());
            }
            seen[r] = true;
        }
        for v in 0..n {
            for e in up_first[v] as usize..up_first[v + 1] as usize {
                let h = up_head[e] as usize;
                if h >= n || rank[h] <= rank[v] {
                    return Err("upward edge does not ascend".into());
                }
                let m = up_middle[e];
                if m != INVALID_NODE && m as usize >= n {
                    return Err("shortcut tag out of range".into());
                }
            }
        }
        let search = SearchGraph::build(&rank, &up_first, &up_head, &up_weight, &up_middle);
        Ok(ContractionHierarchy {
            rank: rank.into_boxed_slice(),
            up_first: up_first.into_boxed_slice(),
            up_head: up_head.into_boxed_slice(),
            up_weight: up_weight.into_boxed_slice(),
            up_middle: up_middle.into_boxed_slice(),
            num_shortcuts,
            search,
        })
    }

    /// The flattened rank-renumbered search graph the query kernels use.
    #[inline]
    pub fn search_graph(&self) -> &SearchGraph {
        &self.search
    }
}

impl IndexSize for ContractionHierarchy {
    fn index_size_bytes(&self) -> usize {
        self.rank.len() * 4
            + self.up_first.len() * 4
            + self.up_head.len() * 4
            + self.up_weight.len() * 4
            + self.up_middle.len() * 4
            + self.search.index_size_bytes()
    }
}

/// Borrowed persistence view: `(rank, up_first, up_head, up_weight, up_middle)`.
pub(crate) type RawParts<'a> = (
    &'a [u32],
    &'a [u32],
    &'a [NodeId],
    &'a [Weight],
    &'a [NodeId],
);

/// Simulates contracting `v`: fills `shortcuts` with the shortcuts it
/// would create (as `(u, w, weight)` with `u`, `w` live neighbours) and
/// returns its live degree. Both scratch vectors are cleared and reused
/// across calls so the contraction loop stays allocation-free.
fn simulate(
    overlay: &Overlay,
    witness: &mut WitnessSearch,
    v: NodeId,
    settle_limit: usize,
    neighbors_scratch: &mut Vec<OEdge>,
    shortcuts: &mut Vec<(NodeId, NodeId, Weight)>,
) -> usize {
    neighbors_scratch.clear();
    shortcuts.clear();
    neighbors_scratch.extend(overlay.live_edges(v));
    let neighbors = &*neighbors_scratch;
    for (i, eu) in neighbors.iter().enumerate() {
        if i + 1 == neighbors.len() {
            break;
        }
        // One witness search from u covers all pairs (u, w), w after u.
        let cutoff = neighbors[i + 1..]
            .iter()
            .map(|ew| eu.weight as Dist + ew.weight as Dist)
            .max()
            .unwrap_or(0);
        witness.run(overlay, eu.to, v, cutoff, settle_limit);
        for ew in &neighbors[i + 1..] {
            if ew.to == eu.to {
                continue;
            }
            let via_v = eu.weight as Dist + ew.weight as Dist;
            if witness.distance(ew.to) > via_v {
                debug_assert!(via_v <= Weight::MAX as Dist, "shortcut weight overflow");
                shortcuts.push((eu.to, ew.to, via_v as Weight));
            }
        }
    }
    neighbors.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    /// Replays §3.2's worked example: contracting v1..v8 in order creates
    /// exactly c1 = (v3, v8, 2) at v1, c2 = (v7, v6, 2) at v5, and
    /// c3 = (v7, v8, 4) at v6.
    #[test]
    fn figure2_shortcuts() {
        let g = figure1();
        let order: Vec<NodeId> = (0..8).collect();
        let ch = ContractionHierarchy::build_with_order(&g, &order);
        assert_eq!(ch.num_shortcuts(), 3);

        // c1: when v1 (id 0) is contracted it connects v3 (2) and v8 (7).
        // The shortcut shows up as an upward edge of whichever endpoint is
        // contracted earlier: v3 at rank 2 < v8 at rank 7.
        let e = ch.upward_edge_to(2, 7).expect("c1 exists");
        assert_eq!(ch.edge_weight(e), 2);
        assert_eq!(ch.edge_middle(e), 0);

        // c2: contracting v5 (4) connects v7 (6) and v6 (5); v6 is lower.
        let e = ch.upward_edge_to(5, 6).expect("c2 exists");
        assert_eq!(ch.edge_weight(e), 2);
        assert_eq!(ch.edge_middle(e), 4);

        // c3: contracting v6 (5) connects v7 (6) and v8 (7); v7 is lower.
        let e = ch.upward_edge_to(6, 7).expect("c3 exists");
        assert_eq!(ch.edge_weight(e), 4);
        assert_eq!(ch.edge_middle(e), 5);
    }

    #[test]
    fn v2_contraction_creates_no_shortcut() {
        // §3.2: after v1 is contracted, v2's neighbours v3 and v8 are
        // already connected by c1 (weight 2) which is not longer than the
        // path through v2 (1 + 2 = 3), so no shortcut appears.
        let g = figure1();
        let ch = ContractionHierarchy::build_with_order(&g, &(0..8).collect::<Vec<_>>());
        // v2 has id 1; its upward edges are its original ones only, and no
        // shortcut anywhere is tagged with middle v2.
        for v in 0..8u32 {
            for (e, _, _) in ch.upward_edges(v) {
                assert_ne!(ch.edge_middle(e), 1, "no shortcut may be tagged v2");
            }
        }
    }

    #[test]
    fn upward_edges_all_ascend() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        for v in 0..8u32 {
            for (_, h, _) in ch.upward_edges(v) {
                assert!(ch.rank(h) > ch.rank(v));
            }
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut seen = [false; 8];
        for v in 0..8u32 {
            let r = ch.rank(v) as usize;
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn heuristic_order_creates_few_shortcuts_on_figure1() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        // The identity order needs 3; a sensible heuristic should not be
        // dramatically worse on this tiny graph.
        assert!(ch.num_shortcuts() <= 5, "got {}", ch.num_shortcuts());
    }

    #[test]
    fn index_size_counts_all_arrays() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        // Base arrays: rank + up_first + three parallel edge arrays.
        let base = 8 * 4 + 9 * 4 + ch.num_upward_edges() * 12;
        // Search graph: two permutations, two CSR offset arrays, and the
        // 12-byte interleaved records of both halves.
        let flat = 2 * 8 * 4 + 2 * 9 * 4 + 2 * ch.num_upward_edges() * 12;
        assert_eq!(ch.index_size_bytes(), base + flat);
    }
}
