//! Contraction Hierarchies (CH), the vertex-importance-based index of
//! Geisberger et al. evaluated as the paper's §3.2 technique.
//!
//! Preprocessing imposes a total order on the vertices (heuristically, by
//! repeatedly contracting the least important remaining vertex), inserting
//! a *shortcut* edge between two neighbours of a contracted vertex
//! whenever the shortest path between them runs through it. Queries run a
//! bidirectional Dijkstra that only relaxes edges leading to higher-ranked
//! vertices; shortest-path queries additionally unpack shortcuts back into
//! original edges using the contracted-vertex tag each shortcut carries.
//!
//! The crate exposes three layers:
//!
//! * [`ContractionHierarchy`] — the preprocessed index ([`build`] /
//!   [`build_with_params`] / [`build_with_order`]), which carries the
//!   flattened rank-renumbered [`SearchGraph`] the query kernels run on.
//! * [`ChQuery`] — a reusable query workspace for distance and
//!   shortest-path queries over the flat layout ([`LegacyChQuery`] keeps
//!   the original CSR-walking kernel as the reference and bench
//!   baseline).
//! * [`ManyToMany`] — bucket-based distance tables between node sets,
//!   the engine behind TNR's preprocessing (paper §4.1: "we employed CH
//!   to accelerate the shortest path computation required in the
//!   preprocessing steps of SILC, PCPD, and TNR").
//! * [`BatchDistances`] — the serving-path batch kernel: multi-source
//!   upward sweeps with structure-of-arrays distance lanes ([`LANES`]
//!   endpoints per sweep), budget-aware, bit-identical to pointwise
//!   queries.
//!
//! # Example
//!
//! ```
//! use spq_graph::toy::figure1;
//! use spq_ch::{ContractionHierarchy, ChQuery};
//!
//! let g = figure1();
//! let ch = ContractionHierarchy::build(&g);
//! let mut q = ChQuery::new(&ch);
//! assert_eq!(q.distance(2, 6), Some(6)); // dist(v3, v7), paper §3.2
//! let (d, path) = q.shortest_path(2, 6).unwrap();
//! assert_eq!(d, 6);
//! assert_eq!(g.path_length(&path), Some(6)); // unpacked to real edges
//! ```

pub mod backend;
pub mod batch;
pub mod contraction;
pub mod legacy;
pub mod many2many;
pub mod ordering;
pub mod persist;
pub mod query;
pub mod search_graph;

pub use batch::{BatchDistances, LANES};
pub use contraction::{ChParams, ContractionHierarchy};
pub use legacy::LegacyChQuery;
pub use many2many::{par_table, ManyToMany};
pub use query::ChQuery;
pub use search_graph::{SearchEdge, SearchGraph};
