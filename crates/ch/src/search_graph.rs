//! The flattened, rank-renumbered CH search graph — the cache-conscious
//! layout the query kernels run on.
//!
//! [`ContractionHierarchy`](crate::ContractionHierarchy) keeps its upward
//! graph keyed by *original* vertex ids, which is the natural shape for
//! contraction and persistence but a poor one for querying: the upward
//! search of §3.2 spends its time on the few thousand most important
//! vertices, and under original ids those are scattered across the whole
//! id space, so every settle is a cache miss.
//!
//! [`SearchGraph`] renumbers vertices by contraction rank (vertex `r` is
//! the one contracted `r`-th), which clusters the hot high-ranked core at
//! the top of every array, and stores two flattened CSR halves of
//! interleaved [`SearchEdge`] records:
//!
//! * the **upward** half: for each vertex, its upward edges with targets
//!   in ascending rank — one contiguous 12-byte-record scan per settle,
//!   shared by both directions of the bidirectional search (the network
//!   is undirected);
//! * the **downward** half: the transpose, sorted by source rank — the
//!   lookup structure for shortcut unpacking (the two halves of a
//!   shortcut tagged `m` are upward edges *of* `m`, found in the
//!   downward lists of the shortcut's endpoints by binary search).
//!
//! Original ids appear only at the boundary: [`SearchGraph::rank_of`] on
//! the way in, [`SearchGraph::orig_of`] when emitting unpacked paths.

use spq_graph::size::IndexSize;
use spq_graph::types::{NodeId, Weight, INVALID_NODE};

/// "Not a shortcut" marker in [`SearchEdge::middle`].
pub const NO_MIDDLE: u32 = u32::MAX;

/// One interleaved edge record of the flattened search graph. All fields
/// are in rank space; 12 bytes, so a 64-byte cache line holds five and a
/// typical upward adjacency (3–5 edges) is a single-line scan.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchEdge {
    /// Rank of the other endpoint (above in the upward half, below in
    /// the downward half).
    pub target: u32,
    /// Edge weight.
    pub weight: Weight,
    /// Rank of the contracted vertex this shortcut replaces, or
    /// [`NO_MIDDLE`] for an original road edge.
    pub middle: u32,
}

/// Borrowed persistence sections of a [`SearchGraph`]:
/// `(node, up_first, up, down_first, down)`.
pub(crate) type Sections<'a> = (
    &'a [NodeId],
    &'a [u32],
    &'a [SearchEdge],
    &'a [u32],
    &'a [SearchEdge],
);

/// The rank-renumbered flat search graph. Built once after contraction
/// (deterministically — pure array transposition, no ordering choices)
/// and immutable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchGraph {
    /// Original id → rank.
    rank: Box<[u32]>,
    /// Rank → original id (inverse permutation of `rank`).
    node: Box<[NodeId]>,
    up_first: Box<[u32]>,
    up: Box<[SearchEdge]>,
    down_first: Box<[u32]>,
    down: Box<[SearchEdge]>,
}

impl SearchGraph {
    /// Builds the flat graph from the hierarchy's raw arrays (original-id
    /// space, as produced by contraction or loaded from disk).
    pub(crate) fn build(
        rank: &[u32],
        up_first: &[u32],
        up_head: &[NodeId],
        up_weight: &[Weight],
        up_middle: &[NodeId],
    ) -> SearchGraph {
        let n = rank.len();
        let mut node = vec![0 as NodeId; n];
        for (v, &r) in rank.iter().enumerate() {
            node[r as usize] = v as NodeId;
        }

        // Upward half: per-rank adjacency, preserving each vertex's edge
        // order (already ascending by target rank from `freeze`).
        let mut flat_first = vec![0u32; n + 1];
        for r in 0..n {
            let v = node[r] as usize;
            flat_first[r + 1] = flat_first[r] + (up_first[v + 1] - up_first[v]);
        }
        let total = flat_first[n] as usize;
        let mut up = Vec::with_capacity(total);
        for &v in node.iter() {
            let v = v as usize;
            for e in up_first[v] as usize..up_first[v + 1] as usize {
                let m = up_middle[e];
                up.push(SearchEdge {
                    target: rank[up_head[e] as usize],
                    weight: up_weight[e],
                    middle: if m == INVALID_NODE {
                        NO_MIDDLE
                    } else {
                        rank[m as usize]
                    },
                });
            }
        }

        // Downward half: the transpose. Filling in ascending source rank
        // leaves every down list sorted by target (= source rank), with
        // parallel edges in their source's upward order — exactly the
        // record a legacy `upward_edge_to` first-match lookup would pick.
        let mut down_first = vec![0u32; n + 1];
        for e in &up {
            down_first[e.target as usize + 1] += 1;
        }
        for r in 0..n {
            down_first[r + 1] += down_first[r];
        }
        let mut cursor: Vec<u32> = down_first[..n].to_vec();
        let mut down = vec![
            SearchEdge {
                target: 0,
                weight: 0,
                middle: NO_MIDDLE
            };
            total
        ];
        for r in 0..n as u32 {
            for e in &up[flat_first[r as usize] as usize..flat_first[r as usize + 1] as usize] {
                let slot = &mut cursor[e.target as usize];
                down[*slot as usize] = SearchEdge {
                    target: r,
                    weight: e.weight,
                    middle: e.middle,
                };
                *slot += 1;
            }
        }

        SearchGraph {
            rank: rank.to_vec().into_boxed_slice(),
            node: node.into_boxed_slice(),
            up_first: flat_first.into_boxed_slice(),
            up: up.into_boxed_slice(),
            down_first: down_first.into_boxed_slice(),
            down: down.into_boxed_slice(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node.len()
    }

    /// Number of edges in each half.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.up.len()
    }

    /// Rank of original vertex `v`.
    #[inline]
    pub fn rank_of(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Original id of the vertex at rank `r`.
    #[inline]
    pub fn orig_of(&self, r: u32) -> NodeId {
        self.node[r as usize]
    }

    /// Upward edges of the vertex at rank `r` (targets ascend, all `> r`).
    #[inline]
    pub fn up(&self, r: u32) -> &[SearchEdge] {
        &self.up[self.up_first[r as usize] as usize..self.up_first[r as usize + 1] as usize]
    }

    /// Downward edges of the vertex at rank `r` (targets ascend, all
    /// `< r`): the upward edges that point *to* `r`, keyed by their
    /// source.
    #[inline]
    pub fn down(&self, r: u32) -> &[SearchEdge] {
        &self.down[self.down_first[r as usize] as usize..self.down_first[r as usize + 1] as usize]
    }

    /// Finds the edge from `below` up to `r` — the record in `r`'s
    /// downward list with the given target — via binary search. With
    /// parallel edges, returns the first, matching the legacy kernel's
    /// first-match lookup. Shortcut unpacking's only search primitive.
    #[inline]
    pub fn down_edge_to(&self, r: u32, below: u32) -> Option<&SearchEdge> {
        let list = self.down(r);
        let i = list.partition_point(|e| e.target < below);
        list.get(i).filter(|e| e.target == below)
    }

    /// Raw sections for persistence: `(node, up_first, up, down_first,
    /// down)`.
    pub(crate) fn sections(&self) -> Sections<'_> {
        (
            &self.node,
            &self.up_first,
            &self.up,
            &self.down_first,
            &self.down,
        )
    }
}

impl IndexSize for SearchGraph {
    fn index_size_bytes(&self) -> usize {
        self.rank.len() * 4
            + self.node.len() * 4
            + self.up_first.len() * 4
            + self.up.len() * std::mem::size_of::<SearchEdge>()
            + self.down_first.len() * 4
            + self.down.len() * std::mem::size_of::<SearchEdge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contraction::ContractionHierarchy;
    use spq_graph::toy::{figure1, grid_graph};

    #[test]
    fn records_are_twelve_bytes() {
        assert_eq!(std::mem::size_of::<SearchEdge>(), 12);
    }

    #[test]
    fn flat_graph_mirrors_hierarchy() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let sg = ch.search_graph();
        assert_eq!(sg.num_nodes(), 8);
        assert_eq!(sg.num_edges(), ch.num_upward_edges());
        for v in 0..8u32 {
            let r = sg.rank_of(v);
            assert_eq!(sg.orig_of(r), v);
            assert_eq!(r, ch.rank(v));
            let flat = sg.up(r);
            let legacy: Vec<_> = ch.upward_edges(v).collect();
            assert_eq!(flat.len(), legacy.len());
            for (fe, &(e, head, w)) in flat.iter().zip(&legacy) {
                assert_eq!(fe.target, ch.rank(head));
                assert_eq!(fe.weight, w);
                let m = ch.edge_middle(e);
                if m == INVALID_NODE {
                    assert_eq!(fe.middle, NO_MIDDLE);
                } else {
                    assert_eq!(fe.middle, ch.rank(m));
                }
            }
        }
    }

    #[test]
    fn up_targets_ascend_within_and_above_source() {
        let g = grid_graph(6, 7);
        let ch = ContractionHierarchy::build(&g);
        let sg = ch.search_graph();
        for r in 0..sg.num_nodes() as u32 {
            let mut prev = r; // targets must all exceed the source rank
            for e in sg.up(r) {
                assert!(e.target > r);
                assert!(e.target >= prev, "targets must ascend");
                prev = e.target;
            }
        }
    }

    #[test]
    fn down_is_the_exact_transpose() {
        let g = grid_graph(5, 9);
        let ch = ContractionHierarchy::build(&g);
        let sg = ch.search_graph();
        let n = sg.num_nodes() as u32;
        let mut down_seen = 0usize;
        for r in 0..n {
            let mut prev = 0;
            for e in sg.down(r) {
                assert!(e.target < r);
                assert!(e.target >= prev, "down targets must ascend");
                prev = e.target;
                // The matching upward record must exist below.
                assert!(sg
                    .up(e.target)
                    .iter()
                    .any(|u| u.target == r && u.weight == e.weight && u.middle == e.middle));
                down_seen += 1;
            }
        }
        assert_eq!(down_seen, sg.num_edges());
        // And the binary-search lookup agrees with a linear scan.
        for r in 0..n {
            for below in 0..r {
                let linear = sg.down(r).iter().find(|e| e.target == below);
                assert_eq!(sg.down_edge_to(r, below), linear);
            }
        }
    }
}
