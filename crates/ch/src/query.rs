//! CH distance and shortest-path queries (paper §3.2) over the flattened
//! rank-renumbered [`SearchGraph`].
//!
//! The kernel never touches original vertex ids except at the boundary:
//! endpoints are translated to ranks on entry, unpacked paths back to
//! original ids on exit. In between, every settle scans one contiguous
//! slice of interleaved [`SearchEdge`](crate::search_graph::SearchEdge)
//! records whose targets ascend — the layout the cache wants.

use spq_graph::backend::QueryBudget;
use spq_graph::heap::IndexedHeap;
use spq_graph::types::{Dist, NodeId, INFINITY, INVALID_NODE};

use crate::contraction::ContractionHierarchy;
use crate::search_graph::{SearchGraph, NO_MIDDLE};

/// One direction's workspace of the bidirectional upward search.
///
/// Sized lazily on the first query: a freshly constructed [`ChQuery`]
/// owns no n-length arrays, so spinning up a worker pool against a large
/// graph costs nothing until a worker actually serves a query — and from
/// the second query on, a side is allocation-free.
#[derive(Debug)]
struct Side {
    dist: Vec<Dist>,
    /// Rank of the vertex that discovered each vertex (for path
    /// retrieval).
    parent: Vec<u32>,
    /// Middle tag of the discovering edge ([`NO_MIDDLE`] if original).
    parent_middle: Vec<u32>,
    stamp: Vec<u32>,
    heap: IndexedHeap,
}

impl Side {
    fn empty() -> Self {
        Side {
            dist: Vec::new(),
            parent: Vec::new(),
            parent_middle: Vec::new(),
            stamp: Vec::new(),
            heap: IndexedHeap::new(0),
        }
    }

    /// Grows the workspace to cover `n` vertices (no-op once grown).
    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist = vec![INFINITY; n];
            self.parent = vec![INVALID_NODE; n];
            self.parent_middle = vec![NO_MIDDLE; n];
            self.stamp = vec![0; n];
            self.heap = IndexedHeap::new(n);
        }
    }

    fn begin(&mut self, root: u32, version: u32) {
        self.heap.clear();
        self.dist[root as usize] = 0;
        self.parent[root as usize] = INVALID_NODE;
        self.parent_middle[root as usize] = NO_MIDDLE;
        self.stamp[root as usize] = version;
        self.heap.push_or_decrease(root, 0);
    }

    #[inline]
    fn reached(&self, r: u32, version: u32) -> bool {
        self.stamp[r as usize] == version
    }
}

/// A reusable CH query workspace.
///
/// Distance queries run the modified bidirectional Dijkstra of §3.2: both
/// traversals only follow edges (and shortcuts) leading to higher-ranked
/// vertices, and — unlike plain bidirectional Dijkstra — they may not stop
/// at the first meeting vertex ("there exist a few conditions that a
/// traversal should fulfill before it can terminate"): each side runs
/// until its queue minimum reaches the best connection found so far.
///
/// Shortest-path queries additionally unpack shortcuts: a shortcut tagged
/// with contracted vertex `m` between `u` and `w` is recursively replaced
/// by the hierarchy edges (u, m) and (m, w), looked up in the search
/// graph's downward half.
#[derive(Debug)]
pub struct ChQuery<'a> {
    ch: &'a ContractionHierarchy,
    sg: &'a SearchGraph,
    fwd: Side,
    bwd: Side,
    version: u32,
    /// Enables the stall-on-demand optimisation (skip expanding vertices
    /// already proven suboptimal via a higher-ranked neighbour). On by
    /// default; the ablation bench toggles it.
    pub stall_on_demand: bool,
    /// Vertices settled by the most recent query.
    pub last_settled: usize,
    /// Scratch stack for shortcut unpacking: `(a, b, middle)` in rank
    /// space.
    unpack_stack: Vec<(u32, u32, u32)>,
    budget: QueryBudget,
}

impl Clone for ChQuery<'_> {
    /// Cloning yields a fresh workspace against the same hierarchy —
    /// lazily sized, like [`ChQuery::new`] — rather than copying the
    /// megabytes of per-query scratch state.
    fn clone(&self) -> Self {
        let mut q = ChQuery::new(self.ch);
        q.stall_on_demand = self.stall_on_demand;
        q.budget = self.budget.clone();
        q
    }
}

impl<'a> ChQuery<'a> {
    /// Creates a workspace bound to `ch`. Allocation of the n-sized
    /// search arrays is deferred to the first query.
    pub fn new(ch: &'a ContractionHierarchy) -> Self {
        ChQuery {
            ch,
            sg: ch.search_graph(),
            fwd: Side::empty(),
            bwd: Side::empty(),
            version: 0,
            stall_on_demand: true,
            last_settled: 0,
            unpack_stack: Vec::new(),
            budget: QueryBudget::unlimited(),
        }
    }

    /// The hierarchy this workspace queries.
    pub fn hierarchy(&self) -> &'a ContractionHierarchy {
        self.ch
    }

    /// Installs the cancellation budget subsequent queries run under
    /// (one charge per settled vertex). The default is unlimited.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether a query since the last [`ChQuery::set_budget`] was cut
    /// short by the budget (its `None` is an abort, not "unreachable").
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted()
    }

    /// Distance query (§2): length of the shortest s–t path.
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.search(s, t).map(|(d, _)| d)
    }

    /// Shortest-path query (§2): distance plus the full vertex sequence
    /// in the original network, with all shortcuts unpacked.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        let (d, meet) = self.search(s, t)?;
        let rs = self.sg.rank_of(s);
        let rt = self.sg.rank_of(t);
        // The augmented path: s ..fwd.. meet ..bwd.. t, as hierarchy edges
        // in rank space; original ids appear only as the path is emitted.
        let mut path = vec![s];
        // Forward half (s -> meet), collected backwards then reversed.
        let mut fwd_edges = Vec::new();
        let mut cur = meet;
        while cur != rs {
            let m = self.fwd.parent_middle[cur as usize];
            let from = self.fwd.parent[cur as usize];
            fwd_edges.push((from, cur, m));
            cur = from;
        }
        fwd_edges.reverse();
        for (from, to, m) in fwd_edges {
            self.append_unpacked(from, to, m, &mut path);
        }
        // Backward half (meet -> t): bwd parents walk toward t.
        let mut cur = meet;
        while cur != rt {
            let m = self.bwd.parent_middle[cur as usize];
            let to = self.bwd.parent[cur as usize];
            self.append_unpacked(cur, to, m, &mut path);
            cur = to;
        }
        Some((d, path))
    }

    /// Appends the expansion of the hierarchy edge from rank `from` to
    /// rank `to` tagged `middle` to `path` (original ids), excluding
    /// `from` itself. Iterative to survive very long shortcut chains.
    fn append_unpacked(&mut self, from: u32, to: u32, middle: u32, path: &mut Vec<NodeId>) {
        debug_assert_eq!(path.last().copied(), Some(self.sg.orig_of(from)));
        self.unpack_stack.clear();
        self.unpack_stack.push((from, to, middle));
        while let Some((a, b, m)) = self.unpack_stack.pop() {
            if m == NO_MIDDLE {
                path.push(self.sg.orig_of(b));
            } else {
                // Shortcut tagged m: replace with (a, m) then (m, b). The
                // halves are upward edges *of m* (m was contracted before
                // both endpoints), found in the endpoints' downward
                // lists. Push in reverse order: stack is LIFO.
                let e1 = self
                    .sg
                    .down_edge_to(a, m)
                    .expect("shortcut half (m, a) must exist in the hierarchy");
                let e2 = self
                    .sg
                    .down_edge_to(b, m)
                    .expect("shortcut half (m, b) must exist in the hierarchy");
                self.unpack_stack.push((m, b, e2.middle));
                self.unpack_stack.push((a, m, e1.middle));
            }
        }
    }

    /// The bidirectional upward search, entirely in rank space. Returns
    /// `(distance, meeting rank)`.
    fn search(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, u32)> {
        let n = self.sg.num_nodes();
        self.fwd.ensure(n);
        self.bwd.ensure(n);
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.fwd.stamp.fill(0);
            self.bwd.stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.last_settled = 0;
        let rs = self.sg.rank_of(s);
        let rt = self.sg.rank_of(t);
        self.fwd.begin(rs, version);
        self.bwd.begin(rt, version);
        if rs == rt {
            return Some((0, rs));
        }

        let mut mu = INFINITY;
        let mut meet = u32::MAX;
        loop {
            let ftop = self.fwd.heap.peek_key().unwrap_or(INFINITY);
            let btop = self.bwd.heap.peek_key().unwrap_or(INFINITY);
            // Each side keeps running until its own minimum reaches mu:
            // upward searches may improve mu after the frontiers first
            // touch (the "few conditions" §3.2 alludes to).
            if ftop.min(btop) >= mu {
                break;
            }
            let side_is_fwd = if ftop >= mu {
                false
            } else if btop >= mu {
                true
            } else {
                ftop <= btop
            };
            let (this, other) = if side_is_fwd {
                (&mut self.fwd, &mut self.bwd)
            } else {
                (&mut self.bwd, &mut self.fwd)
            };
            if !self.budget.charge() {
                return None;
            }
            let Some((d, u)) = this.heap.pop_min() else {
                break;
            };
            self.last_settled += 1;

            // Meeting check: u reached by the other side.
            if other.reached(u, version) {
                let total = d + other.dist[u as usize];
                if total < mu {
                    mu = total;
                    meet = u;
                }
            }

            let edges = self.sg.up(u);

            // Stall-on-demand: if a higher-ranked, already-settled
            // neighbour offers a shorter way back down to u, u cannot be
            // on a shortest up-down path; skip expanding it.
            if self.stall_on_demand
                && edges.iter().any(|e| {
                    this.reached(e.target, version)
                        && this.dist[e.target as usize] + (e.weight as Dist) < d
                })
            {
                continue;
            }

            for e in edges {
                let nd = d + e.weight as Dist;
                let hi = e.target as usize;
                if this.stamp[hi] != version || nd < this.dist[hi] {
                    this.dist[hi] = nd;
                    this.parent[hi] = u;
                    this.parent_middle[hi] = e.middle;
                    this.stamp[hi] = version;
                    this.heap.push_or_decrease(e.target, nd);
                }
            }
        }

        if meet == u32::MAX {
            None
        } else {
            Some((mu, meet))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contraction::ContractionHierarchy;
    use crate::legacy::LegacyChQuery;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};
    use spq_graph::RoadNetwork;

    fn check_all_pairs(g: &RoadNetwork, ch: &ContractionHierarchy) {
        let n = g.num_nodes() as NodeId;
        let mut q = ChQuery::new(ch);
        let mut legacy = LegacyChQuery::new(ch);
        let mut reference = Dijkstra::new(g.num_nodes());
        for s in 0..n {
            reference.run(g, s);
            for t in 0..n {
                let expect = reference.distance(t);
                assert_eq!(q.distance(s, t), expect, "distance ({s},{t})");
                let (d, path) = q.shortest_path(s, t).expect("path exists");
                assert_eq!(Some(d), expect, "path length ({s},{t})");
                assert_eq!(path.first().copied(), Some(s));
                assert_eq!(path.last().copied(), Some(t));
                assert_eq!(
                    g.path_length(&path),
                    expect,
                    "path ({s},{t}) must be edge-valid and optimal: {path:?}"
                );
                // The flat kernel is a re-layout, not a re-algorithm: it
                // must reproduce the legacy kernel's answers exactly.
                assert_eq!(legacy.shortest_path(s, t), Some((d, path)), "({s},{t})");
            }
        }
    }

    #[test]
    fn figure1_worked_example() {
        let g = figure1();
        let ch = ContractionHierarchy::build_with_order(&g, &(0..8).collect::<Vec<_>>());
        let mut q = ChQuery::new(&ch);
        // §3.2: dist(v3, v7) = w(c1) + w(c3) = 6, met at v8.
        assert_eq!(q.distance(2, 6), Some(6));
        // The unpacked path must be v3 v1 v8 v6 v5 v7 (all real edges).
        let (_, path) = q.shortest_path(2, 6).unwrap();
        assert_eq!(path, vec![2, 0, 7, 5, 4, 6]);
    }

    #[test]
    fn identity_order_all_pairs_exact() {
        let g = figure1();
        let ch = ContractionHierarchy::build_with_order(&g, &(0..8).collect::<Vec<_>>());
        check_all_pairs(&g, &ch);
    }

    #[test]
    fn heuristic_order_all_pairs_exact() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        check_all_pairs(&g, &ch);
    }

    #[test]
    fn grid_all_pairs_exact() {
        let g = grid_graph(7, 5);
        let ch = ContractionHierarchy::build(&g);
        check_all_pairs(&g, &ch);
    }

    #[test]
    fn stalling_does_not_change_answers() {
        let g = grid_graph(9, 9);
        let ch = ContractionHierarchy::build(&g);
        let mut with = ChQuery::new(&ch);
        let mut without = ChQuery::new(&ch);
        without.stall_on_demand = false;
        for s in [0u32, 7, 40, 80] {
            for t in [0u32, 8, 44, 72] {
                assert_eq!(with.distance(s, t), without.distance(s, t));
            }
        }
    }

    #[test]
    fn search_space_shrinks_relative_to_dijkstra() {
        let g = grid_graph(30, 30);
        let ch = ContractionHierarchy::build(&g);
        let mut q = ChQuery::new(&ch);
        let mut d = Dijkstra::new(g.num_nodes());
        let (s, t) = (0u32, (g.num_nodes() - 1) as u32);
        q.distance(s, t);
        d.run_to_target(&g, s, t);
        assert!(
            q.last_settled * 3 < d.stats.settled,
            "CH settled {} vs Dijkstra {}",
            q.last_settled,
            d.stats.settled
        );
    }

    #[test]
    fn clone_starts_lazy_but_answers_identically() {
        let g = grid_graph(6, 6);
        let ch = ContractionHierarchy::build(&g);
        let mut q = ChQuery::new(&ch);
        assert_eq!(q.fwd.dist.len(), 0, "construction must not allocate");
        q.distance(0, 35);
        let mut c = q.clone();
        assert_eq!(c.fwd.dist.len(), 0, "clone must reset to lazy");
        for (s, t) in [(0u32, 35u32), (5, 30), (12, 12)] {
            assert_eq!(c.distance(s, t), q.distance(s, t));
            assert_eq!(c.shortest_path(s, t), q.shortest_path(s, t));
        }
    }

    #[test]
    fn synthetic_network_random_pairs_exact() {
        let g = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(900, 3));
        let ch = ContractionHierarchy::build(&g);
        let mut q = ChQuery::new(&ch);
        let mut d = Dijkstra::new(g.num_nodes());
        let n = g.num_nodes() as u32;
        let mut state = 0xdead_beefu64;
        for _ in 0..60 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let s = ((state >> 33) % n as u64) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = ((state >> 33) % n as u64) as u32;
            d.run_to_target(&g, s, t);
            assert_eq!(q.distance(s, t), d.distance(t), "({s},{t})");
            let (dist, path) = q.shortest_path(s, t).unwrap();
            assert_eq!(g.path_length(&path), Some(dist), "({s},{t})");
        }
    }
}
