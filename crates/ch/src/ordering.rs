//! Node-ordering heuristics for the contraction process.
//!
//! The paper (§3.2) notes that CH's efficiency is determined by the total
//! order and that "existing work on CH has suggested several heuristic
//! approaches for deriving a favorable ordering". This module implements
//! the classic linear combination used by Geisberger et al.'s reference
//! implementation (which the paper adopted, §4.1): *edge difference* +
//! *deleted neighbours* + *hierarchy level*, evaluated lazily.

use spq_graph::types::NodeId;

/// Coefficients of the priority formula. Larger priority = contracted
/// later = more important.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityWeights {
    /// Weight of the edge difference (#shortcuts − #incident edges).
    pub edge_difference: i64,
    /// Weight of the number of already-contracted neighbours (spreads
    /// contraction evenly across the network).
    pub deleted_neighbors: i64,
    /// Weight of the hierarchy level lower bound (keeps the hierarchy
    /// shallow).
    pub level: i64,
}

impl Default for PriorityWeights {
    fn default() -> Self {
        PriorityWeights {
            edge_difference: 4,
            deleted_neighbors: 2,
            level: 1,
        }
    }
}

/// Per-node ordering state maintained during contraction.
#[derive(Debug)]
pub struct OrderingState {
    weights: PriorityWeights,
    /// Number of contracted neighbours of each remaining node.
    pub deleted: Vec<u32>,
    /// Lower bound on each node's hierarchy level.
    pub level: Vec<u32>,
}

impl OrderingState {
    /// Initial state for `n` nodes.
    pub fn new(n: usize, weights: PriorityWeights) -> Self {
        OrderingState {
            weights,
            deleted: vec![0; n],
            level: vec![0; n],
        }
    }

    /// Combines the simulation result for a node into its priority.
    #[inline]
    pub fn priority(&self, v: NodeId, shortcuts: usize, incident_edges: usize) -> i64 {
        let ed = shortcuts as i64 - incident_edges as i64;
        self.weights.edge_difference * ed
            + self.weights.deleted_neighbors * self.deleted[v as usize] as i64
            + self.weights.level * self.level[v as usize] as i64
    }

    /// Records that `v` was contracted and `u` is a surviving neighbour.
    #[inline]
    pub fn on_contract_neighbor(&mut self, contracted: NodeId, u: NodeId) {
        self.deleted[u as usize] += 1;
        let lv = self.level[contracted as usize] + 1;
        if self.level[u as usize] < lv {
            self.level[u as usize] = lv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_by_edge_difference() {
        let st = OrderingState::new(4, PriorityWeights::default());
        // A node producing fewer shortcuts than it removes is cheap.
        assert!(st.priority(0, 0, 3) < st.priority(1, 3, 3));
        assert!(st.priority(1, 3, 3) < st.priority(2, 6, 2));
    }

    #[test]
    fn deleted_neighbors_raise_priority() {
        let mut st = OrderingState::new(2, PriorityWeights::default());
        let before = st.priority(0, 1, 2);
        st.on_contract_neighbor(1, 0);
        assert!(st.priority(0, 1, 2) > before);
        assert_eq!(st.deleted[0], 1);
        assert_eq!(st.level[0], 1);
    }

    #[test]
    fn levels_propagate_max() {
        let mut st = OrderingState::new(3, PriorityWeights::default());
        st.level[1] = 5;
        st.on_contract_neighbor(1, 2);
        assert_eq!(st.level[2], 6);
        st.on_contract_neighbor(0, 2); // level 0 + 1 < 6: unchanged
        assert_eq!(st.level[2], 6);
        assert_eq!(st.deleted[2], 2);
    }
}
