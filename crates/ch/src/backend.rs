//! [`Backend`] implementation for Contraction Hierarchies.
//!
//! Point-to-point queries go through the regular [`ChQuery`] workspace.
//! Batched distance queries are routed to the SoA-lane batch kernel
//! ([`BatchDistances`]) whenever the batch is *dense* — both sides have
//! at least two vertices — because the multi-source sweep amortises the
//! upward searches across lanes and the bucket combine amortises the
//! backward side across the whole target set, which a loop of
//! point-to-point queries cannot. Degenerate (1×k or k×1) batches fall
//! back to the default per-pair loop, which is cheaper than paying the
//! batch setup for a single row. Both paths poll the same
//! [`QueryBudget`], so deadlines and forced shutdown interrupt batches
//! exactly like point queries.

use spq_graph::backend::{Backend, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::RoadNetwork;

use crate::batch::BatchDistances;
use crate::contraction::ContractionHierarchy;
use crate::query::ChQuery;

/// Per-thread CH workspace: the point-to-point query state plus a
/// lazily created batch workspace (its lane slab is `O(n)`, so workers
/// that never see a batch never pay for it).
pub struct ChSession<'a> {
    ch: &'a ContractionHierarchy,
    query: ChQuery<'a>,
    batch: Option<BatchDistances<'a>>,
    budget: QueryBudget,
}

impl Backend for ContractionHierarchy {
    fn backend_name(&self) -> &'static str {
        "CH"
    }

    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(ChSession {
            ch: self,
            query: ChQuery::new(self),
            batch: None,
            budget: QueryBudget::unlimited(),
        })
    }
}

impl Session for ChSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.query.distance(s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.query.shortest_path(s, t)
    }

    fn distances(&mut self, sources: &[NodeId], targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        if sources.len() < 2 || targets.len() < 2 {
            out.clear();
            out.extend(
                sources
                    .iter()
                    .flat_map(|&s| targets.iter().map(move |&t| (s, t)))
                    .map(|(s, t)| self.query.distance(s, t)),
            );
            return;
        }
        let batch = self
            .batch
            .get_or_insert_with(|| BatchDistances::new(self.ch));
        batch.set_budget(self.budget.clone());
        out.clear();
        match batch.table(sources, targets) {
            Some(table) => {
                out.extend(
                    table
                        .into_iter()
                        .map(|d| if d >= INFINITY { None } else { Some(d) }),
                )
            }
            // Budget tripped mid-batch: report every pair unanswered
            // rather than fabricating entries; `interrupted` tells the
            // caller the batch was cut short, not unreachable.
            None => out.resize(sources.len() * targets.len(), None),
        }
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.query.set_budget(budget.clone());
        if let Some(batch) = &mut self.batch {
            batch.set_budget(budget.clone());
        }
        self.budget = budget;
    }

    fn interrupted(&self) -> bool {
        self.query.budget_exhausted() || self.batch.as_ref().is_some_and(|b| b.budget_exhausted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    #[test]
    fn dense_batch_matches_point_to_point() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut session = ch.session(&g);
        let sources: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let targets = sources.clone();
        let mut out = Vec::new();
        session.distances(&sources, &targets, &mut out);
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    out[i * targets.len() + j],
                    session.distance(s, t),
                    "batch ({s},{t})"
                );
            }
        }
        // Degenerate one-row batch takes the loop path; same answers.
        let mut row = Vec::new();
        session.distances(&sources[..1], &targets, &mut row);
        assert_eq!(row, out[..targets.len()].to_vec());
    }

    #[test]
    fn interrupted_batch_answers_nothing() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut session = ch.session(&g);
        session.set_budget(QueryBudget::unlimited().with_node_cap(1));
        let sources: Vec<NodeId> = (0..4).collect();
        let targets: Vec<NodeId> = (4..8).collect();
        let mut out = Vec::new();
        session.distances(&sources, &targets, &mut out);
        assert!(session.interrupted());
        assert_eq!(out.len(), sources.len() * targets.len());
        assert!(out.iter().all(Option::is_none));
    }
}
