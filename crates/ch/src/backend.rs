//! [`Backend`] implementation for Contraction Hierarchies.
//!
//! Point-to-point queries go through the regular [`ChQuery`] workspace.
//! Batched distance queries are routed to the bucket-based many-to-many
//! algorithm ([`ManyToMany`]) whenever the batch is *dense* — both sides
//! have at least two vertices — because the bucket technique amortises
//! the backward searches across the whole target set, which a loop of
//! point-to-point queries cannot. Degenerate (1×k or k×1) batches fall
//! back to the default per-pair loop, which is cheaper than paying the
//! bucket setup for a single row.

use spq_graph::backend::{Backend, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::RoadNetwork;

use crate::contraction::ContractionHierarchy;
use crate::many2many::ManyToMany;
use crate::query::ChQuery;

/// Per-thread CH workspace: the point-to-point query state plus a
/// lazily created many-to-many workspace (its buckets are `O(n)`, so
/// workers that never see a batch never pay for them).
pub struct ChSession<'a> {
    ch: &'a ContractionHierarchy,
    query: ChQuery<'a>,
    many: Option<ManyToMany<'a>>,
}

impl Backend for ContractionHierarchy {
    fn backend_name(&self) -> &'static str {
        "CH"
    }

    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(ChSession {
            ch: self,
            query: ChQuery::new(self),
            many: None,
        })
    }
}

impl Session for ChSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.query.distance(s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.query.shortest_path(s, t)
    }

    fn distances(&mut self, sources: &[NodeId], targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        if sources.len() < 2 || targets.len() < 2 {
            out.clear();
            out.extend(
                sources
                    .iter()
                    .flat_map(|&s| targets.iter().map(move |&t| (s, t)))
                    .map(|(s, t)| self.query.distance(s, t)),
            );
            return;
        }
        let many = self.many.get_or_insert_with(|| ManyToMany::new(self.ch));
        let table = many.table(sources, targets);
        out.clear();
        out.extend(
            table
                .into_iter()
                .map(|d| if d >= INFINITY { None } else { Some(d) }),
        );
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        // The bucket-based many-to-many path is not cancellable (its
        // work is bounded by the batch-size cap the server enforces);
        // point-to-point queries poll the budget per settled vertex.
        self.query.set_budget(budget);
    }

    fn interrupted(&self) -> bool {
        self.query.budget_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    #[test]
    fn dense_batch_matches_point_to_point() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut session = ch.session(&g);
        let sources: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        let targets = sources.clone();
        let mut out = Vec::new();
        session.distances(&sources, &targets, &mut out);
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    out[i * targets.len() + j],
                    session.distance(s, t),
                    "batch ({s},{t})"
                );
            }
        }
        // Degenerate one-row batch takes the loop path; same answers.
        let mut row = Vec::new();
        session.distances(&sources[..1], &targets, &mut row);
        assert_eq!(row, out[..targets.len()].to_vec());
    }
}
