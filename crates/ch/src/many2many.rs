//! Bucket-based many-to-many distance tables over a hierarchy.
//!
//! TNR's preprocessing needs two kinds of bulk distance computations
//! (paper §3.3): vertex → access-node distances within a cell, and the
//! pairwise distances between all access nodes. Both reduce to
//! many-to-many queries, which CH answers with the classic bucket
//! technique: run an upward search from every target, deposit
//! `(target, distance)` pairs at every settled vertex, then run an upward
//! search from each source and combine at the shared vertices.

use spq_graph::heap::IndexedHeap;
use spq_graph::par;
use spq_graph::types::{Dist, NodeId, INFINITY};

use crate::contraction::ContractionHierarchy;
use crate::search_graph::SearchGraph;

/// Reusable upward-search workspace: an exhaustive Dijkstra over the
/// flattened upward half of the search graph, in rank space, recording
/// every settled vertex. The upward search space is tiny
/// (polylogarithmic in practice), so no pruning is needed. Each
/// preprocessing worker thread owns one.
struct UpwardSearch {
    dist: Vec<Dist>,
    stamp: Vec<u32>,
    version: u32,
    heap: IndexedHeap,
    /// `(rank, dist)` pairs settled by the most recent search.
    settled: Vec<(u32, Dist)>,
}

impl UpwardSearch {
    fn new(n: usize) -> Self {
        UpwardSearch {
            dist: vec![INFINITY; n],
            stamp: vec![0; n],
            version: 0,
            heap: IndexedHeap::new(n),
            settled: Vec::new(),
        }
    }

    fn run(&mut self, sg: &SearchGraph, root: u32) {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.heap.clear();
        self.settled.clear();
        self.dist[root as usize] = 0;
        self.stamp[root as usize] = version;
        self.heap.push_or_decrease(root, 0);
        while let Some((d, u)) = self.heap.pop_min() {
            self.settled.push((u, d));
            for e in sg.up(u) {
                let nd = d + e.weight as Dist;
                let hi = e.target as usize;
                if self.stamp[hi] != version || nd < self.dist[hi] {
                    self.dist[hi] = nd;
                    self.stamp[hi] = version;
                    self.heap.push_or_decrease(e.target, nd);
                }
            }
        }
    }
}

/// Many-to-many distance computation workspace. Sources and targets are
/// original vertex ids; internally everything runs in rank space over
/// the flat search graph.
pub struct ManyToMany<'a> {
    sg: &'a SearchGraph,
    search: UpwardSearch,
    /// `buckets[r]` holds `(target_index, dist(r ↑ target))` entries.
    buckets: Vec<Vec<(u32, Dist)>>,
    touched_buckets: Vec<u32>,
    /// Number of targets in the most recent [`ManyToMany::prepare_targets`].
    prepared: usize,
}

impl<'a> ManyToMany<'a> {
    /// Creates a workspace bound to `ch`.
    pub fn new(ch: &'a ContractionHierarchy) -> Self {
        let sg = ch.search_graph();
        let n = sg.num_nodes();
        ManyToMany {
            sg,
            search: UpwardSearch::new(n),
            buckets: vec![Vec::new(); n],
            touched_buckets: Vec::new(),
            prepared: 0,
        }
    }

    /// Phase 1 of the bucket algorithm: runs an upward search from every
    /// target and deposits `(target_index, distance)` pairs at each
    /// settled vertex. Afterwards [`ManyToMany::distances_from`] answers
    /// one source at a time against this target set.
    pub fn prepare_targets(&mut self, targets: &[NodeId]) {
        for v in self.touched_buckets.drain(..) {
            self.buckets[v as usize].clear();
        }
        self.prepared = targets.len();
        for (j, &t) in targets.iter().enumerate() {
            self.search.run(self.sg, self.sg.rank_of(t));
            for i in 0..self.search.settled.len() {
                let (r, d) = self.search.settled[i];
                let bucket = &mut self.buckets[r as usize];
                if bucket.is_empty() {
                    self.touched_buckets.push(r);
                }
                bucket.push((j as u32, d));
            }
        }
    }

    /// Phase 2 for a single source: fills `row` (length = number of
    /// prepared targets) with the distances from `source`.
    pub fn distances_from(&mut self, source: NodeId, row: &mut [Dist]) {
        assert_eq!(row.len(), self.prepared, "row must match prepare_targets");
        row.fill(INFINITY);
        self.search.run(self.sg, self.sg.rank_of(source));
        for i in 0..self.search.settled.len() {
            let (r, d) = self.search.settled[i];
            for &(j, dt) in &self.buckets[r as usize] {
                let total = d + dt;
                if total < row[j as usize] {
                    row[j as usize] = total;
                }
            }
        }
    }

    /// Computes the full `sources × targets` distance table, row-major:
    /// entry `i * targets.len() + j` is `dist(sources[i], targets[j])`
    /// ([`INFINITY`] only if unreachable, impossible on connected
    /// networks).
    pub fn table(&mut self, sources: &[NodeId], targets: &[NodeId]) -> Vec<Dist> {
        self.prepare_targets(targets);
        let m = targets.len();
        let mut out = vec![INFINITY; sources.len() * m];
        for (i, &s) in sources.iter().enumerate() {
            // Split the output to satisfy the borrow checker cheaply.
            let (_, rest) = out.split_at_mut(i * m);
            self.distances_from(s, &mut rest[..m]);
        }
        out
    }

    /// Distances from one source to many targets.
    pub fn one_to_many(&mut self, source: NodeId, targets: &[NodeId]) -> Vec<Dist> {
        self.table(&[source], targets)
    }
}

/// The full `sources × targets` distance table, row-major, computed with
/// the preprocessing worker pool ([`spq_graph::par`]).
///
/// Both phases of the bucket algorithm fan out — the backward upward
/// searches across targets and the forward searches across sources —
/// with one [`UpwardSearch`] workspace per worker. Bucket deposits
/// happen on one thread in target order and the row combine takes a
/// minimum (order-insensitive), so the table is identical to
/// [`ManyToMany::table`]'s for any thread count.
pub fn par_table(ch: &ContractionHierarchy, sources: &[NodeId], targets: &[NodeId]) -> Vec<Dist> {
    let sg = ch.search_graph();
    let n = sg.num_nodes();
    let m = targets.len();

    // Phase 1: per-target settled sets, then a sequential deposit in
    // target order (identical bucket entry order to the sequential path).
    let settled_per_target: Vec<Vec<(u32, Dist)>> = par::par_map(
        targets,
        || UpwardSearch::new(n),
        |ws, &t| {
            ws.run(sg, sg.rank_of(t));
            ws.settled.clone()
        },
    );
    let mut buckets: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
    for (j, settled) in settled_per_target.iter().enumerate() {
        for &(r, d) in settled {
            buckets[r as usize].push((j as u32, d));
        }
    }
    drop(settled_per_target);

    // Phase 2: one forward search per source against the shared
    // read-only buckets.
    let rows: Vec<Vec<Dist>> = par::par_map(
        sources,
        || UpwardSearch::new(n),
        |ws, &s| {
            ws.run(sg, sg.rank_of(s));
            let mut row = vec![INFINITY; m];
            for i in 0..ws.settled.len() {
                let (r, d) = ws.settled[i];
                for &(j, dt) in &buckets[r as usize] {
                    let total = d + dt;
                    if total < row[j as usize] {
                        row[j as usize] = total;
                    }
                }
            }
            row
        },
    );
    let mut out = Vec::with_capacity(sources.len() * m);
    for row in rows {
        out.extend_from_slice(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contraction::ContractionHierarchy;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};

    #[test]
    fn table_matches_dijkstra_on_figure1() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut m2m = ManyToMany::new(&ch);
        let sources = [0u32, 2, 6];
        let targets = [1u32, 3, 5, 7];
        let table = m2m.table(&sources, &targets);
        let mut d = Dijkstra::new(g.num_nodes());
        for (i, &s) in sources.iter().enumerate() {
            d.run(&g, s);
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    table[i * targets.len() + j],
                    d.distance(t).unwrap(),
                    "pair ({s},{t})"
                );
            }
        }
    }

    #[test]
    fn table_matches_dijkstra_on_grid() {
        let g = grid_graph(8, 8);
        let ch = ContractionHierarchy::build(&g);
        let mut m2m = ManyToMany::new(&ch);
        let sources: Vec<u32> = (0..16).collect();
        let targets: Vec<u32> = (48..64).collect();
        let table = m2m.table(&sources, &targets);
        let mut d = Dijkstra::new(g.num_nodes());
        for (i, &s) in sources.iter().enumerate() {
            d.run(&g, s);
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(table[i * targets.len() + j], d.distance(t).unwrap());
            }
        }
    }

    #[test]
    fn workspace_reuse_clears_buckets() {
        let g = grid_graph(5, 5);
        let ch = ContractionHierarchy::build(&g);
        let mut m2m = ManyToMany::new(&ch);
        let t1 = m2m.table(&[0], &[24]);
        let t2 = m2m.table(&[0], &[24]); // stale buckets would corrupt this
        assert_eq!(t1, t2);
        let t3 = m2m.one_to_many(24, &[0]);
        assert_eq!(t1, t3); // undirected symmetry
    }

    #[test]
    fn par_table_matches_sequential_table() {
        let g = grid_graph(7, 9);
        let ch = ContractionHierarchy::build(&g);
        let sources: Vec<u32> = (0..20).collect();
        let targets: Vec<u32> = (30..63).collect();
        let sequential = ManyToMany::new(&ch).table(&sources, &targets);
        for threads in [1, 4] {
            let parallel =
                spq_graph::par::with_threads(threads, || par_table(&ch, &sources, &targets));
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn self_distances_are_zero() {
        let g = grid_graph(4, 4);
        let ch = ContractionHierarchy::build(&g);
        let mut m2m = ManyToMany::new(&ch);
        let nodes: Vec<u32> = (0..16).collect();
        let table = m2m.table(&nodes, &nodes);
        for i in 0..16 {
            assert_eq!(table[i * 16 + i], 0);
        }
    }
}
