//! Binary persistence for contraction hierarchies.
//!
//! CH preprocessing is cheap (minutes on the paper's largest dataset)
//! but still worth doing once: a routing service restarts with a
//! `read_binary` in milliseconds instead of re-contracting.

use std::io::{self, Read, Write};

use spq_graph::binio::{self, IndexLoadError};
use spq_graph::types::NodeId;

use crate::contraction::ContractionHierarchy;
use crate::search_graph::SearchEdge;

const MAGIC: &[u8; 4] = b"SPQC";
/// Version 3 appends the flattened rank-renumbered search graph to the
/// version-2 payload, so a load hands the query kernels the exact layout
/// that was built (and cross-checks it against a fresh derivation).
/// Version-2 files (base arrays only) still load — the search graph is
/// rebuilt on the fly. Version-1 files predate the checksummed container
/// ([`binio::write_checksummed`]) and are refused (rebuild to migrate).
const VERSION: u32 = 3;
const MIN_VERSION: u32 = 2;

/// Flattens interleaved edge records to the plain `u32` stream
/// [`binio::write_u32s`] speaks: `target, weight, middle` per record.
fn edges_to_u32s(edges: &[SearchEdge]) -> Vec<u32> {
    let mut out = Vec::with_capacity(edges.len() * 3);
    for e in edges {
        out.push(e.target);
        out.push(e.weight);
        out.push(e.middle);
    }
    out
}

fn u32s_to_edges(raw: &[u32]) -> Result<Vec<SearchEdge>, String> {
    if raw.len() % 3 != 0 {
        return Err("edge section length is not a multiple of 3".into());
    }
    Ok(raw
        .chunks_exact(3)
        .map(|c| SearchEdge {
            target: c[0],
            weight: c[1],
            middle: c[2],
        })
        .collect())
}

impl ContractionHierarchy {
    /// Serialises the hierarchy (ranks + upward graph + shortcut tags,
    /// followed by the flat search-graph sections) inside a checksummed
    /// container.
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        binio::write_u64(&mut body, self.num_shortcuts() as u64)?;
        let (rank, up_first, up_head, up_weight, up_middle) = self.raw_parts();
        binio::write_u32s(&mut body, rank)?;
        binio::write_u32s(&mut body, up_first)?;
        binio::write_u32s(&mut body, up_head)?;
        binio::write_u32s(&mut body, up_weight)?;
        binio::write_u32s(&mut body, up_middle)?;
        let (node, sg_up_first, sg_up, sg_down_first, sg_down) = self.search_graph().sections();
        binio::write_u32s(&mut body, node)?;
        binio::write_u32s(&mut body, sg_up_first)?;
        binio::write_u32s(&mut body, &edges_to_u32s(sg_up))?;
        binio::write_u32s(&mut body, sg_down_first)?;
        binio::write_u32s(&mut body, &edges_to_u32s(sg_down))?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Deserialises a hierarchy written by
    /// [`ContractionHierarchy::write_binary`], verifying the checksum
    /// and structural invariants before returning it. Accepts version-2
    /// files (pre-search-graph) as a migration path: their flat layout
    /// is rebuilt from the base arrays.
    pub fn read_binary(r: &mut impl Read) -> Result<ContractionHierarchy, IndexLoadError> {
        let (version, body) = binio::read_checksummed_versioned(r, MAGIC, MIN_VERSION, VERSION)?;
        let r = &mut &body[..];
        let num_shortcuts = binio::read_u64(r)? as usize;
        let rank = binio::read_u32s(r)?;
        let up_first = binio::read_u32s(r)?;
        let up_head = binio::read_u32s(r)?;
        let up_weight = binio::read_u32s(r)?;
        let up_middle = binio::read_u32s(r)?;
        let ch = ContractionHierarchy::from_raw_parts(
            rank,
            up_first,
            up_head,
            up_weight,
            up_middle,
            num_shortcuts,
        )
        .map_err(IndexLoadError::Corrupt)?;
        if version >= 3 {
            // The stored search graph must equal the one derived from the
            // base arrays — anything else means the two sections of the
            // file disagree, i.e. it was not produced by `write_binary`.
            let node: Vec<NodeId> = binio::read_u32s(r)?;
            let sg_up_first = binio::read_u32s(r)?;
            let sg_up = u32s_to_edges(&binio::read_u32s(r)?).map_err(IndexLoadError::Corrupt)?;
            let sg_down_first = binio::read_u32s(r)?;
            let sg_down = u32s_to_edges(&binio::read_u32s(r)?).map_err(IndexLoadError::Corrupt)?;
            let (enode, eup_first, eup, edown_first, edown) = ch.search_graph().sections();
            if node != enode
                || sg_up_first != eup_first
                || sg_up != eup
                || sg_down_first != edown_first
                || sg_down != edown
            {
                return Err(IndexLoadError::Corrupt(
                    "search-graph section disagrees with the base arrays".into(),
                ));
            }
        }
        Ok(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ChQuery;
    use spq_graph::toy::{figure1, grid_graph};
    use spq_graph::types::NodeId;

    #[test]
    fn roundtrip_answers_identically() {
        for g in [figure1(), grid_graph(6, 8)] {
            let ch = ContractionHierarchy::build(&g);
            let mut buf = Vec::new();
            ch.write_binary(&mut buf).unwrap();
            let ch2 = ContractionHierarchy::read_binary(&mut &buf[..]).unwrap();
            assert_eq!(ch2.num_nodes(), ch.num_nodes());
            assert_eq!(ch2.num_shortcuts(), ch.num_shortcuts());
            assert_eq!(ch2.search_graph(), ch.search_graph());
            let mut q1 = ChQuery::new(&ch);
            let mut q2 = ChQuery::new(&ch2);
            for s in 0..g.num_nodes() as NodeId {
                for t in 0..g.num_nodes() as NodeId {
                    assert_eq!(q1.distance(s, t), q2.distance(s, t));
                    assert_eq!(
                        q1.shortest_path(s, t).unwrap().1,
                        q2.shortest_path(s, t).unwrap().1
                    );
                }
            }
        }
    }

    /// A version-2 file (base arrays only, no search-graph sections)
    /// must still load, with the flat layout rebuilt on the fly.
    #[test]
    fn migrates_version_2_files() {
        let g = grid_graph(5, 6);
        let ch = ContractionHierarchy::build(&g);
        let mut body = Vec::new();
        binio::write_u64(&mut body, ch.num_shortcuts() as u64).unwrap();
        let (rank, up_first, up_head, up_weight, up_middle) = ch.raw_parts();
        binio::write_u32s(&mut body, rank).unwrap();
        binio::write_u32s(&mut body, up_first).unwrap();
        binio::write_u32s(&mut body, up_head).unwrap();
        binio::write_u32s(&mut body, up_weight).unwrap();
        binio::write_u32s(&mut body, up_middle).unwrap();
        let mut v2 = Vec::new();
        binio::write_checksummed(&mut v2, MAGIC, 2, &body).unwrap();

        let migrated = ContractionHierarchy::read_binary(&mut &v2[..]).unwrap();
        assert_eq!(migrated.search_graph(), ch.search_graph());
        // Re-serialising the migrated index produces a current-version
        // file, byte-identical to serialising the original.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        migrated.write_binary(&mut a).unwrap();
        ch.write_binary(&mut b).unwrap();
        assert_eq!(a, b);
    }

    /// A tampered search-graph section is rejected even though the base
    /// arrays parse (the checksum is recomputed to isolate the
    /// cross-section consistency check).
    #[test]
    fn rejects_inconsistent_search_graph_section() {
        let g = grid_graph(4, 4);
        let ch = ContractionHierarchy::build(&g);
        let mut buf = Vec::new();
        ch.write_binary(&mut buf).unwrap();
        // Re-pack the container with one weight flipped in the flat
        // upward section (the last-but-one array of the body).
        let body_start = 4 + 4 + 8 + 8;
        let mut body = buf[body_start..].to_vec();
        let n = ch.num_nodes();
        let m = ch.num_upward_edges();
        // Offsets: u64 + five base arrays (each u64 len + payload), the
        // node array, the up_first array, then the up edge records.
        let base = 8 + (8 + n * 4) + (8 + (n + 1) * 4) + 3 * (8 + m * 4);
        let up_records = base + (8 + n * 4) + (8 + (n + 1) * 4) + 8;
        body[up_records + 4] ^= 1; // weight of the first flat record
        let mut tampered = Vec::new();
        binio::write_checksummed(&mut tampered, MAGIC, VERSION, &body).unwrap();
        let err = ContractionHierarchy::read_binary(&mut &tampered[..]).unwrap_err();
        assert!(
            matches!(err, IndexLoadError::Corrupt(ref m) if m.contains("search-graph")),
            "got: {err}"
        );
    }

    #[test]
    fn rejects_invalid_payloads() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut buf = Vec::new();
        ch.write_binary(&mut buf).unwrap();
        buf[1] ^= 0xff;
        assert!(matches!(
            ContractionHierarchy::read_binary(&mut &buf[..]),
            Err(IndexLoadError::BadMagic { .. })
        ));
        // Truncation: drop the trailing section.
        let mut buf2 = Vec::new();
        ch.write_binary(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 9);
        assert!(matches!(
            ContractionHierarchy::read_binary(&mut &buf2[..]),
            Err(IndexLoadError::Truncated { .. })
        ));
        // A bit flip anywhere in the body trips the checksum.
        let mut buf3 = Vec::new();
        ch.write_binary(&mut buf3).unwrap();
        let mid = buf3.len() / 2;
        buf3[mid] ^= 0x04;
        assert!(matches!(
            ContractionHierarchy::read_binary(&mut &buf3[..]),
            Err(IndexLoadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_legacy_version_with_clear_message() {
        // A pre-checksum (version 1) file: header + raw payload. It must
        // be refused outright, never half-parsed.
        let mut legacy = Vec::new();
        spq_graph::binio::write_header(&mut legacy, b"SPQC", 1).unwrap();
        spq_graph::binio::write_u64(&mut legacy, 0).unwrap();
        let err = ContractionHierarchy::read_binary(&mut &legacy[..]).unwrap_err();
        assert!(matches!(
            err,
            IndexLoadError::LegacyVersion { found: 1, .. }
        ));
        assert!(err.to_string().contains("rebuild"), "message: {err}");
    }
}
