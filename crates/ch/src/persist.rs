//! Binary persistence for contraction hierarchies.
//!
//! CH preprocessing is cheap (minutes on the paper's largest dataset)
//! but still worth doing once: a routing service restarts with a
//! `read_binary` in milliseconds instead of re-contracting.

use std::io::{self, Read, Write};

use spq_graph::binio::{self, IndexLoadError};

use crate::contraction::ContractionHierarchy;

const MAGIC: &[u8; 4] = b"SPQC";
/// Version 2 wraps the payload in the checksummed container
/// ([`binio::write_checksummed`]); version-1 files predate it and are
/// refused at load (rebuild to migrate).
const VERSION: u32 = 2;

impl ContractionHierarchy {
    /// Serialises the hierarchy (ranks + upward graph + shortcut tags)
    /// inside a checksummed container.
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        binio::write_u64(&mut body, self.num_shortcuts() as u64)?;
        let (rank, up_first, up_head, up_weight, up_middle) = self.raw_parts();
        binio::write_u32s(&mut body, rank)?;
        binio::write_u32s(&mut body, up_first)?;
        binio::write_u32s(&mut body, up_head)?;
        binio::write_u32s(&mut body, up_weight)?;
        binio::write_u32s(&mut body, up_middle)?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Deserialises a hierarchy written by
    /// [`ContractionHierarchy::write_binary`], verifying the checksum
    /// and structural invariants before returning it.
    pub fn read_binary(r: &mut impl Read) -> Result<ContractionHierarchy, IndexLoadError> {
        let body = binio::read_checksummed(r, MAGIC, VERSION)?;
        let r = &mut &body[..];
        let num_shortcuts = binio::read_u64(r)? as usize;
        let rank = binio::read_u32s(r)?;
        let up_first = binio::read_u32s(r)?;
        let up_head = binio::read_u32s(r)?;
        let up_weight = binio::read_u32s(r)?;
        let up_middle = binio::read_u32s(r)?;
        ContractionHierarchy::from_raw_parts(
            rank,
            up_first,
            up_head,
            up_weight,
            up_middle,
            num_shortcuts,
        )
        .map_err(IndexLoadError::Corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ChQuery;
    use spq_graph::toy::{figure1, grid_graph};
    use spq_graph::types::NodeId;

    #[test]
    fn roundtrip_answers_identically() {
        for g in [figure1(), grid_graph(6, 8)] {
            let ch = ContractionHierarchy::build(&g);
            let mut buf = Vec::new();
            ch.write_binary(&mut buf).unwrap();
            let ch2 = ContractionHierarchy::read_binary(&mut &buf[..]).unwrap();
            assert_eq!(ch2.num_nodes(), ch.num_nodes());
            assert_eq!(ch2.num_shortcuts(), ch.num_shortcuts());
            let mut q1 = ChQuery::new(&ch);
            let mut q2 = ChQuery::new(&ch2);
            for s in 0..g.num_nodes() as NodeId {
                for t in 0..g.num_nodes() as NodeId {
                    assert_eq!(q1.distance(s, t), q2.distance(s, t));
                    assert_eq!(
                        q1.shortest_path(s, t).unwrap().1,
                        q2.shortest_path(s, t).unwrap().1
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_invalid_payloads() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut buf = Vec::new();
        ch.write_binary(&mut buf).unwrap();
        buf[1] ^= 0xff;
        assert!(matches!(
            ContractionHierarchy::read_binary(&mut &buf[..]),
            Err(IndexLoadError::BadMagic { .. })
        ));
        // Truncation: drop the trailing section.
        let mut buf2 = Vec::new();
        ch.write_binary(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 9);
        assert!(matches!(
            ContractionHierarchy::read_binary(&mut &buf2[..]),
            Err(IndexLoadError::Truncated { .. })
        ));
        // A bit flip anywhere in the body trips the checksum.
        let mut buf3 = Vec::new();
        ch.write_binary(&mut buf3).unwrap();
        let mid = buf3.len() / 2;
        buf3[mid] ^= 0x04;
        assert!(matches!(
            ContractionHierarchy::read_binary(&mut &buf3[..]),
            Err(IndexLoadError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_legacy_version_with_clear_message() {
        // A pre-checksum (version 1) file: header + raw payload. It must
        // be refused outright, never half-parsed.
        let mut legacy = Vec::new();
        spq_graph::binio::write_header(&mut legacy, b"SPQC", 1).unwrap();
        spq_graph::binio::write_u64(&mut legacy, 0).unwrap();
        let err = ContractionHierarchy::read_binary(&mut &legacy[..]).unwrap_err();
        assert!(matches!(
            err,
            IndexLoadError::LegacyVersion { found: 1, .. }
        ));
        assert!(err.to_string().contains("rebuild"), "message: {err}");
    }
}
