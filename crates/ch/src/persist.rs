//! Binary persistence for contraction hierarchies.
//!
//! CH preprocessing is cheap (minutes on the paper's largest dataset)
//! but still worth doing once: a routing service restarts with a
//! `read_binary` in milliseconds instead of re-contracting.

use std::io::{self, Read, Write};

use spq_graph::binio;

use crate::contraction::ContractionHierarchy;

const MAGIC: &[u8; 4] = b"SPQC";
const VERSION: u32 = 1;

impl ContractionHierarchy {
    /// Serialises the hierarchy (ranks + upward graph + shortcut tags).
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        binio::write_header(w, MAGIC, VERSION)?;
        binio::write_u64(w, self.num_shortcuts() as u64)?;
        let (rank, up_first, up_head, up_weight, up_middle) = self.raw_parts();
        binio::write_u32s(w, rank)?;
        binio::write_u32s(w, up_first)?;
        binio::write_u32s(w, up_head)?;
        binio::write_u32s(w, up_weight)?;
        binio::write_u32s(w, up_middle)?;
        Ok(())
    }

    /// Deserialises a hierarchy written by
    /// [`ContractionHierarchy::write_binary`].
    pub fn read_binary(r: &mut impl Read) -> io::Result<ContractionHierarchy> {
        let version = binio::read_header(r, MAGIC)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported CH format version {version}"),
            ));
        }
        let num_shortcuts = binio::read_u64(r)? as usize;
        let rank = binio::read_u32s(r)?;
        let up_first = binio::read_u32s(r)?;
        let up_head = binio::read_u32s(r)?;
        let up_weight = binio::read_u32s(r)?;
        let up_middle = binio::read_u32s(r)?;
        ContractionHierarchy::from_raw_parts(
            rank,
            up_first,
            up_head,
            up_weight,
            up_middle,
            num_shortcuts,
        )
        .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ChQuery;
    use spq_graph::toy::{figure1, grid_graph};
    use spq_graph::types::NodeId;

    #[test]
    fn roundtrip_answers_identically() {
        for g in [figure1(), grid_graph(6, 8)] {
            let ch = ContractionHierarchy::build(&g);
            let mut buf = Vec::new();
            ch.write_binary(&mut buf).unwrap();
            let ch2 = ContractionHierarchy::read_binary(&mut &buf[..]).unwrap();
            assert_eq!(ch2.num_nodes(), ch.num_nodes());
            assert_eq!(ch2.num_shortcuts(), ch.num_shortcuts());
            let mut q1 = ChQuery::new(&ch);
            let mut q2 = ChQuery::new(&ch2);
            for s in 0..g.num_nodes() as NodeId {
                for t in 0..g.num_nodes() as NodeId {
                    assert_eq!(q1.distance(s, t), q2.distance(s, t));
                    assert_eq!(
                        q1.shortest_path(s, t).unwrap().1,
                        q2.shortest_path(s, t).unwrap().1
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_invalid_payloads() {
        let g = figure1();
        let ch = ContractionHierarchy::build(&g);
        let mut buf = Vec::new();
        ch.write_binary(&mut buf).unwrap();
        buf[1] ^= 0xff;
        assert!(ContractionHierarchy::read_binary(&mut &buf[..]).is_err());
        // Structurally inconsistent: drop the trailing section.
        let mut buf2 = Vec::new();
        ch.write_binary(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 9);
        assert!(ContractionHierarchy::read_binary(&mut &buf2[..]).is_err());
    }
}
