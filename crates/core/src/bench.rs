//! `spq bench` — the query-latency measurement and regression harness.
//!
//! Times the point-to-point distance kernel of every backend (the five
//! paper techniques plus ALT, arc flags, and hub labeling), the CH
//! shortest-path
//! (unpack) kernel, the legacy CSR-walking CH kernel it replaced, and
//! CH's bucket-based many-to-many, on Table-1 proxy networks. Results
//! go to a JSON report with one entry per line:
//!
//! ```text
//! {"mode":"smoke","network":"DE","vertices":122,"backend":"ch","op":"distance","queries":512,"median_ns":850.2},
//! ```
//!
//! Two modes live in one file: `full` (Table-1 proxies at 1/40 scale,
//! DE–CO) is the number that matters, `smoke` (1/400 scale, DE–ME) is
//! cheap enough for CI. A default run produces both; `--smoke`
//! restricts to the smoke entries so CI can regenerate them and compare
//! against the committed baseline with [`check_against`].
//!
//! The regression check normalises every median by the same run's
//! bidirectional-Dijkstra median on the same network, so it compares
//! *relative* query cost and tolerates absolute machine-speed
//! differences between the baseline host and the CI runner. The
//! trade-off: a regression confined to the baseline itself shifts every
//! ratio down instead of tripping its own row, which is why the
//! Dijkstra kernel is also covered by Criterion benches.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spq_alt::{Alt, AltParams};
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_ch::{BatchDistances, ChQuery, ContractionHierarchy, LegacyChQuery, ManyToMany};
use spq_dijkstra::{BiDijkstra, Dijkstra};
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::RoadNetwork;
use spq_hl::HubLabels;
use spq_many::{KnnWorkspace, OneToMany, PoiIndex, PoiSet};
use spq_pcpd::Pcpd;
use spq_silc::Silc;
use spq_synth::{Dataset, Scale};
use spq_tnr::{Tnr, TnrParams};

/// Vertex ceiling for the all-pairs techniques (SILC, PCPD): beyond
/// this the quadratic preprocessing dominates the whole run, and the
/// paper itself confines them to the smallest datasets (§4.3).
const ALL_PAIRS_CAP: usize = 6_000;

/// Chunk size for the chunked-median timer: one `Instant` read per
/// `CHUNK` queries keeps clock overhead under ~1% even for the
/// sub-microsecond CH kernel.
const CHUNK: usize = 32;

/// Repetitions of the whole chunked-median measurement per cell; the
/// *minimum* of the per-rep medians is reported. A single median still
/// jitters ±30% on the microsecond-scale smoke cells — enough to trip
/// a 25% gate on machine noise alone — while the min over a few reps
/// converges on the noise-free cost, which is the quantity a
/// regression check should compare.
const REPS: usize = 3;

/// Many-to-many table side (sources × targets per `table` call).
const M2M_SIDE: usize = 24;

/// Repetitions of the many-to-many table, median taken across them.
const M2M_REPS: usize = 9;

/// Batched-distances table sizes (total entries); each is measured as
/// a square `√K × √K` table, the shape the serving path's DISTANCES
/// op produces. Per-entry ns is the reported median, so the row is
/// directly comparable against the CH point-query distance row.
const BATCH_SIZES: [usize; 3] = [16, 256, 1024];

/// Repetitions of each batched table, median taken across them.
const BATCH_REPS: usize = 9;

/// Required full-mode speedup of the batched kernel's per-entry cost
/// over one CH point query at the largest table (1024 entries). On the
/// smoke proxies a plain win suffices: at 1/400 scale one upward
/// sweep has almost nothing to amortise.
const BATCH_FULL_SPEEDUP: f64 = 2.0;

/// Medians below this are excluded from the regression gate: a cell in
/// the tens of nanoseconds (TNR's table hits on the smoke networks) is
/// dominated by timer granularity and branch-predictor state, and
/// run-to-run jitter there dwarfs any real regression signal.
const NOISE_FLOOR_NS: f64 = 500.0;

/// Options for one `spq bench` invocation.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Only produce the `smoke` entries (the CI configuration).
    pub smoke_only: bool,
    /// Report path.
    pub out: PathBuf,
    /// Baseline report to compare against; any entry regressing by more
    /// than `tolerance` fails the run.
    pub check: Option<PathBuf>,
    /// Allowed relative regression per entry (0.25 = 25%).
    pub tolerance: f64,
    /// Timed query pairs per (network, backend); 0 picks the default
    /// (1024, or 256 under `SPQ_TEST_FAST=1`).
    pub queries: usize,
    /// Workload seed.
    pub seed: u64,
    /// Op families to measure (`distance`, `path`, `m2m`, `o2m`,
    /// `knn`, `range`); empty measures everything. The Dijkstra
    /// distance row is exempt — it is the normalisation denominator and
    /// is always measured.
    pub only: Vec<String>,
    /// Backends to measure; empty measures everything. `dijkstra` is
    /// exempt for the same reason as above.
    pub backends: Vec<String>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            smoke_only: false,
            out: PathBuf::from("BENCH_query.json"),
            check: None,
            tolerance: 0.25,
            queries: 0,
            seed: 0x5eed_0bec,
            only: Vec::new(),
            backends: Vec::new(),
        }
    }
}

/// Op families recognised by `--only`. `o2m_64`/`o2m_1024` and `knn8`
/// collapse onto their family so a filter selects the whole family,
/// not one parameterisation.
pub const OP_FAMILIES: [&str; 7] = [
    "distance",
    "path",
    "m2m",
    "o2m",
    "knn",
    "range",
    "distances_batch",
];

fn op_family(op: &str) -> &str {
    // `distances_batch` before any `distance` comparison: the batch
    // family's op names share the point-query prefix.
    if op.starts_with("distances_batch") {
        "distances_batch"
    } else if op.starts_with("o2m") {
        "o2m"
    } else if op.starts_with("knn") {
        "knn"
    } else {
        op
    }
}

/// One measured (network, backend, op) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// `smoke` or `full`.
    pub mode: String,
    /// Table-1 dataset name.
    pub network: String,
    /// Vertices in the proxy network.
    pub vertices: usize,
    /// Backend name (`dijkstra`, `ch`, `ch_legacy`, ...).
    pub backend: String,
    /// `distance`, `path`, or `m2m` (ns per table entry).
    pub op: String,
    /// Timed queries (or table entries) behind the median.
    pub queries: usize,
    /// Median nanoseconds per query.
    pub median_ns: f64,
}

impl Entry {
    /// The comparison key: everything but the measurement itself.
    fn key(&self) -> (String, String, String, String) {
        (
            self.mode.clone(),
            self.network.clone(),
            self.backend.clone(),
            self.op.clone(),
        )
    }

    fn to_json_line(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"network\":\"{}\",\"vertices\":{},\"backend\":\"{}\",\"op\":\"{}\",\"queries\":{},\"median_ns\":{:.1}}}",
            self.mode, self.network, self.vertices, self.backend, self.op, self.queries, self.median_ns
        )
    }
}

/// Renders the whole report (line-oriented: one entry per line, so the
/// regression checker and shell tools can grep it without a JSON
/// parser).
pub fn render_report(entries: &[Entry]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"spq-bench-v1\",\n  \"unit\": \"median_ns per query\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{}", e.to_json_line(), comma);
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a report produced by [`render_report`]. Entry objects are
/// recognised line by line; malformed entry lines are an error (a
/// silently shrinking baseline would disable the regression gate).
pub fn parse_report(text: &str) -> Result<Vec<Entry>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"mode\"") {
            continue;
        }
        let parse = || -> Option<Entry> {
            Some(Entry {
                mode: json_str(line, "mode")?,
                network: json_str(line, "network")?,
                vertices: json_num(line, "vertices")? as usize,
                backend: json_str(line, "backend")?,
                op: json_str(line, "op")?,
                queries: json_num(line, "queries")? as usize,
                median_ns: json_num(line, "median_ns")?,
            })
        };
        match parse() {
            Some(e) => out.push(e),
            None => return Err(format!("malformed bench entry on line {}", lineno + 1)),
        }
    }
    if out.is_empty() {
        return Err("no bench entries found in report".into());
    }
    Ok(out)
}

/// Extracts `"key":"value"` from a single-line JSON object.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extracts `"key":number` from a single-line JSON object.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Chunked-median timer: runs `pairs` through `f` in chunks of
/// [`CHUNK`], one warm-up chunk untimed, and takes the median of the
/// per-chunk mean ns/query — the median across chunks shrugs off a
/// scheduler hiccup that would wreck a single mean. The whole pass is
/// repeated [`REPS`] times and the minimum median reported, so the
/// gate compares noise-free costs instead of whichever tail each run
/// happened to land on.
fn median_ns<F: FnMut(NodeId, NodeId) -> u64>(pairs: &[(NodeId, NodeId)], mut f: F) -> f64 {
    assert!(pairs.len() >= 2 * CHUNK, "need at least two chunks");
    let mut sink = 0u64;
    for &(s, t) in &pairs[..CHUNK] {
        sink = sink.wrapping_add(f(s, t));
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let mut per_chunk: Vec<f64> = Vec::with_capacity(pairs.len() / CHUNK);
        for chunk in pairs.chunks_exact(CHUNK) {
            let t0 = Instant::now();
            for &(s, t) in chunk {
                sink = sink.wrapping_add(f(s, t));
            }
            per_chunk.push(t0.elapsed().as_nanos() as f64 / CHUNK as f64);
        }
        best = best.min(median(&mut per_chunk));
    }
    std::hint::black_box(sink);
    best
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Deterministic query pairs: uniform over vertices, seeded per
/// (network, seed) — same workload on every run and host.
fn query_pairs(net: &RoadNetwork, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = net.num_nodes() as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                (rng.random::<u64>() % n) as NodeId,
                (rng.random::<u64>() % n) as NodeId,
            )
        })
        .collect()
}

/// The timed query count for one backend row. Deliberately *not*
/// shrunk under `SPQ_TEST_FAST`: the regression gate compares medians
/// against a committed baseline, and the two runs must draw the exact
/// same workload — a different pair count changes which chunk is the
/// median, which reads as a phantom regression on the bimodal backends
/// (TNR's locality filter, PCPD's pair classes).
fn default_queries() -> usize {
    1024
}

/// Measures every backend on one network, appending entries. The
/// `only`/`backends` filters subset the measured cells; the Dijkstra
/// distance row is exempt from both because every other row is gated
/// relative to it.
#[allow(clippy::too_many_arguments)]
fn bench_network(
    entries: &mut Vec<Entry>,
    mode: &str,
    dataset: &Dataset,
    net: &RoadNetwork,
    queries: usize,
    seed: u64,
    only: &[String],
    backends: &[String],
) -> Result<(), String> {
    let n = net.num_nodes();
    let pairs = query_pairs(net, queries, seed ^ dataset.paper_vertices);
    let want = |backend: &str, op: &str| {
        (backends.is_empty() || backends.iter().any(|b| b == backend))
            && (only.is_empty() || only.iter().any(|o| o == op_family(op)))
    };
    let mut push = |backend: &str, op: &str, q: usize, ns: f64| {
        eprintln!(
            "[bench {mode}/{}] {backend:>9} {op:<8} {ns:>12.1} ns/query",
            dataset.name
        );
        entries.push(Entry {
            mode: mode.to_string(),
            network: dataset.name.to_string(),
            vertices: n,
            backend: backend.to_string(),
            op: op.to_string(),
            queries: q,
            median_ns: ns,
        });
    };

    // Dijkstra first: it is the normalisation denominator for the
    // regression check, so it must exist for every network.
    let mut bi = BiDijkstra::new(n);
    push(
        "dijkstra",
        "distance",
        pairs.len(),
        median_ns(&pairs, |s, t| bi.distance(net, s, t).unwrap_or(0)),
    );

    // One CH build serves every hierarchy-based kernel: the flat
    // distance/path kernels, the legacy comparison kernel, the bucket
    // many-to-many, the one-to-many family, and hub labeling. Skip the
    // build entirely when the filters select none of them.
    let need_ch = [
        "distance",
        "path",
        "m2m",
        "o2m_64",
        "knn8",
        "range",
        "distances_batch_16",
    ]
    .iter()
    .any(|op| want("ch", op))
        || want("ch_legacy", "distance")
        || want("ch_legacy", "path")
        || want("hl", "distance");
    let ch = if need_ch {
        Some(ContractionHierarchy::build(net))
    } else {
        None
    };
    if let Some(ch) = &ch {
        {
            let mut q = ChQuery::new(ch);
            if want("ch", "distance") {
                push(
                    "ch",
                    "distance",
                    pairs.len(),
                    median_ns(&pairs, |s, t| q.distance(s, t).unwrap_or(0)),
                );
            }
            if want("ch", "path") {
                push(
                    "ch",
                    "path",
                    pairs.len(),
                    median_ns(&pairs, |s, t| {
                        q.shortest_path(s, t)
                            .map(|(d, p)| d + p.len() as u64)
                            .unwrap_or(0)
                    }),
                );
            }
        }
        {
            let mut q = LegacyChQuery::new(ch);
            if want("ch_legacy", "distance") {
                push(
                    "ch_legacy",
                    "distance",
                    pairs.len(),
                    median_ns(&pairs, |s, t| q.distance(s, t).unwrap_or(0)),
                );
            }
            if want("ch_legacy", "path") {
                push(
                    "ch_legacy",
                    "path",
                    pairs.len(),
                    median_ns(&pairs, |s, t| {
                        q.shortest_path(s, t)
                            .map(|(d, p)| d + p.len() as u64)
                            .unwrap_or(0)
                    }),
                );
            }
        }
        if want("ch", "m2m") {
            let side = M2M_SIDE.min(n);
            let sources: Vec<NodeId> = pairs.iter().take(side).map(|&(s, _)| s).collect();
            let targets: Vec<NodeId> = pairs.iter().take(side).map(|&(_, t)| t).collect();
            let mut m2m = ManyToMany::new(ch);
            let mut sink = 0u64;
            let mut reps: Vec<f64> = Vec::with_capacity(M2M_REPS);
            sink = sink.wrapping_add(m2m.table(&sources, &targets).len() as u64); // warm-up
            for _ in 0..M2M_REPS {
                let t0 = Instant::now();
                let table = m2m.table(&sources, &targets);
                reps.push(t0.elapsed().as_nanos() as f64 / table.len() as f64);
                sink = sink.wrapping_add(table.iter().copied().fold(0u64, u64::wrapping_add));
            }
            std::hint::black_box(sink);
            push("ch", "m2m", side * side, median(&mut reps));
        }
        if want("ch", "distances_batch_16") {
            bench_batch_distances(&mut push, net, ch, seed ^ dataset.paper_vertices)?;
        }
        bench_many_ops(
            &mut push,
            &want,
            mode,
            dataset,
            net,
            ch,
            &pairs,
            seed ^ dataset.paper_vertices,
        )?;

        if want("hl", "distance") {
            // Hub labels reuse the hierarchy the CH rows already built —
            // the label store is a pure function of it.
            let labels = HubLabels::build(ch);
            push(
                "hl",
                "distance",
                pairs.len(),
                median_ns(&pairs, |s, t| labels.distance(s, t).unwrap_or(0)),
            );
        }
    }

    if want("tnr", "distance") {
        let tnr = Tnr::build(net, &TnrParams::default());
        let mut q = tnr.query().with_network(net);
        push(
            "tnr",
            "distance",
            pairs.len(),
            median_ns(&pairs, |s, t| q.distance(s, t).unwrap_or(0)),
        );
    }
    if want("alt", "distance") {
        let alt = Alt::build(
            net,
            &AltParams {
                num_landmarks: 16.min(n),
                ..AltParams::default()
            },
        );
        let mut q = alt.query(net);
        push(
            "alt",
            "distance",
            pairs.len(),
            median_ns(&pairs, |s, t| q.distance(s, t).unwrap_or(0)),
        );
    }
    if want("arcflags", "distance") {
        let af = ArcFlags::build(net, &ArcFlagsParams::default());
        let mut q = af.query(net);
        push(
            "arcflags",
            "distance",
            pairs.len(),
            median_ns(&pairs, |s, t| q.distance(s, t).unwrap_or(0)),
        );
    }
    if n <= ALL_PAIRS_CAP {
        if want("silc", "distance") {
            let silc = Silc::build(net);
            let mut q = silc.query(net);
            push(
                "silc",
                "distance",
                pairs.len(),
                median_ns(&pairs, |s, t| q.distance(s, t).unwrap_or(0)),
            );
        }
        if want("pcpd", "distance") {
            let pcpd = Pcpd::build(net);
            let mut q = pcpd.query(net);
            push(
                "pcpd",
                "distance",
                pairs.len(),
                median_ns(&pairs, |s, t| q.distance(s, t).unwrap_or(0)),
            );
        }
    } else {
        eprintln!(
            "[bench {mode}/{}] silc/pcpd skipped: {n} vertices exceeds the all-pairs cap ({ALL_PAIRS_CAP})",
            dataset.name
        );
    }
    Ok(())
}

/// Measures the batched multi-source kernel ([`BatchDistances`]) on
/// square tables of [`BATCH_SIZES`] total entries, reporting median ns
/// *per table entry* so the rows compare directly against the CH
/// point-query distance row ([`check_batch_beats_pointwise`]). Every
/// measured shape is first audited entry-by-entry against the flat CH
/// point kernel: a fast-but-wrong batch must not produce a report.
fn bench_batch_distances(
    push: &mut impl FnMut(&str, &str, usize, f64),
    net: &RoadNetwork,
    ch: &ContractionHierarchy,
    seed: u64,
) -> Result<(), String> {
    let n = net.num_nodes();
    let mut batch = BatchDistances::new(ch);
    let mut point = ChQuery::new(ch);
    let mut out: Vec<Dist> = Vec::new();
    for &k in &BATCH_SIZES {
        let side = ((k as f64).sqrt() as usize).min(n);
        let sources: Vec<NodeId> = query_pairs(net, side, seed ^ 0xba7c ^ k as u64)
            .iter()
            .map(|&(s, _)| s)
            .collect();
        let targets: Vec<NodeId> = query_pairs(net, side, seed ^ 0x7a26 ^ k as u64)
            .iter()
            .map(|&(_, t)| t)
            .collect();

        // Exactness audit before the clock starts.
        if !batch.table_into(&sources, &targets, &mut out) {
            return Err("distances_batch: unbudgeted table tripped a budget".into());
        }
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                let want = point.distance(s, t).unwrap_or(INFINITY);
                if out[i * side + j] != want {
                    return Err(format!(
                        "distances_batch_{k}: entry ({s}, {t}) disagrees with the CH point kernel \
                         — refusing to report"
                    ));
                }
            }
        }

        let mut sink = 0u64;
        let mut reps: Vec<f64> = Vec::with_capacity(BATCH_REPS);
        for _ in 0..BATCH_REPS {
            let t0 = Instant::now();
            batch.table_into(&sources, &targets, &mut out);
            reps.push(t0.elapsed().as_nanos() as f64 / out.len() as f64);
            sink = sink.wrapping_add(out.iter().copied().fold(0u64, u64::wrapping_add));
        }
        std::hint::black_box(sink);
        push(
            "ch",
            &format!("distances_batch_{k}"),
            side * side,
            median(&mut reps),
        );
    }
    Ok(())
}

/// One-to-many target-set sizes: the gate requires the sweep to win at
/// 64 and win by [`O2M_FULL_SPEEDUP`]x at 1024 on the full proxies.
const O2M_SIZES: [usize; 2] = [64, 1024];

/// Required full-mode speedup of one PHAST sweep over |T| = 1024
/// independent CH point queries.
const O2M_FULL_SPEEDUP: f64 = 5.0;

/// Sources audited against the one-to-all Dijkstra oracle per network.
const ORACLE_SOURCES: usize = 4;

/// Measures the one-to-many family (PHAST sweep, bucket-CH kNN,
/// network range) and audits all three for exactness against a plain
/// one-to-all Dijkstra. A fast-but-wrong kernel must not produce a
/// report, so any mismatch fails the whole run.
#[allow(clippy::too_many_arguments)]
fn bench_many_ops(
    push: &mut impl FnMut(&str, &str, usize, f64),
    want: &impl Fn(&str, &str) -> bool,
    mode: &str,
    dataset: &Dataset,
    net: &RoadNetwork,
    ch: &ContractionHierarchy,
    pairs: &[(NodeId, NodeId)],
    seed: u64,
) -> Result<(), String> {
    let n = net.num_nodes();
    let measure_o2m = want("ch", "o2m_64");
    let measure_knn = want("ch", "knn8");
    let measure_range = want("ch", "range");
    if !measure_o2m && !measure_knn && !measure_range {
        return Ok(());
    }

    let mut o2m = OneToMany::new(ch);

    // POI set for kNN: a deterministic sample, sized so buckets stay
    // non-trivial on the smoke networks without dominating the full
    // ones.
    let poi_count = (n / 16).clamp(1, 256).min(n);
    let set = PoiSet::sample(net, "bench", poi_count, seed ^ 0x9015)
        .map_err(|e| format!("{mode}/{}: sample POI set: {e}", dataset.name))?;
    let index = PoiIndex::build(ch, &set).map_err(|e| format!("{mode}/{}: {e}", dataset.name))?;

    // Range limit at roughly the 10th percentile of one source's
    // distance profile: a local neighbourhood, the regime the paper's
    // range queries target.
    let limit = {
        o2m.run(pairs[0].0);
        let mut ds: Vec<Dist> = (0..n as NodeId).filter_map(|v| o2m.distance(v)).collect();
        ds.sort_unstable();
        ds.get(ds.len() / 10).copied().unwrap_or(0)
    };

    if measure_o2m {
        let mut dists: Vec<Option<Dist>> = Vec::new();
        for &k in &O2M_SIZES {
            let targets: Vec<NodeId> = query_pairs(net, k, seed ^ 0x02e0 ^ k as u64)
                .iter()
                .map(|&(_, t)| t)
                .collect();
            let op = format!("o2m_{k}");
            push(
                "ch",
                &op,
                pairs.len(),
                median_ns(pairs, |s, _| {
                    o2m.run(s);
                    o2m.distances_into(&targets, &mut dists);
                    dists
                        .iter()
                        .flatten()
                        .copied()
                        .fold(0u64, u64::wrapping_add)
                }),
            );
        }
    }
    if measure_knn {
        let mut ws = KnnWorkspace::new();
        let mut out: Vec<(NodeId, Dist)> = Vec::new();
        push(
            "ch",
            "knn8",
            pairs.len(),
            median_ns(pairs, |s, _| {
                index.knn(ch.search_graph(), &mut ws, s, 8, &mut out);
                out.iter()
                    .map(|&(v, d)| u64::from(v).wrapping_add(d))
                    .fold(0u64, u64::wrapping_add)
            }),
        );
    }
    if measure_range {
        let mut out: Vec<(NodeId, Dist)> = Vec::new();
        push(
            "ch",
            "range",
            pairs.len(),
            median_ns(pairs, |s, _| {
                o2m.range(s, limit, &mut out);
                out.len() as u64
            }),
        );
    }

    // Exactness audit: a handful of sources against the one-to-all
    // oracle, across whichever of the three kernels were measured.
    let mut truth = Dijkstra::new(n);
    let mut ws = KnnWorkspace::new();
    let mut got: Vec<(NodeId, Dist)> = Vec::new();
    let mut mismatches = 0usize;
    for &(s, _) in pairs.iter().take(ORACLE_SOURCES) {
        truth.run(net, s);
        if measure_o2m {
            o2m.run(s);
            mismatches += (0..n as NodeId)
                .filter(|&v| o2m.distance(v) != truth.distance(v))
                .count();
        }
        if measure_knn {
            let mut expect: Vec<(Dist, NodeId)> = set
                .nodes()
                .iter()
                .filter_map(|&p| truth.distance(p).map(|d| (d, p)))
                .collect();
            expect.sort_unstable();
            expect.truncate(8);
            index.knn(ch.search_graph(), &mut ws, s, 8, &mut got);
            let got_kv: Vec<(Dist, NodeId)> = got.iter().map(|&(v, d)| (d, v)).collect();
            if got_kv != expect {
                mismatches += 1;
            }
        }
        if measure_range {
            let expect: Vec<(NodeId, Dist)> = (0..n as NodeId)
                .filter_map(|v| truth.distance(v).filter(|&d| d <= limit).map(|d| (v, d)))
                .collect();
            o2m.range(s, limit, &mut got);
            if got != expect {
                mismatches += 1;
            }
        }
    }
    if mismatches > 0 {
        return Err(format!(
            "{mode}/{}: o2m/knn/range oracle found {mismatches} mismatch(es) — refusing to report",
            dataset.name
        ));
    }
    eprintln!(
        "[bench {mode}/{}] o2m/knn/range oracle: 0 mismatches over {ORACLE_SOURCES} sources",
        dataset.name
    );
    Ok(())
}

/// Runs the harness: builds each mode's networks, measures every
/// backend, writes the report, and (when requested) gates against a
/// baseline. Returns the entries it measured.
pub fn run(opts: &BenchOptions) -> Result<Vec<Entry>, String> {
    let queries = if opts.queries > 0 {
        opts.queries.max(2 * CHUNK)
    } else {
        default_queries()
    };
    for o in &opts.only {
        if !OP_FAMILIES.contains(&o.as_str()) {
            return Err(format!(
                "--only: unknown op family '{o}' (choose from {})",
                OP_FAMILIES.join(",")
            ));
        }
    }
    let mut modes: Vec<(&str, Scale, Vec<&'static Dataset>)> = vec![(
        "smoke",
        Scale::Smoke,
        ["DE", "NH", "ME"]
            .iter()
            .map(|n| Dataset::by_name(n).unwrap())
            .collect(),
    )];
    if !opts.smoke_only {
        modes.push((
            "full",
            Scale::Paper,
            ["DE", "NH", "ME", "CO"]
                .iter()
                .map(|n| Dataset::by_name(n).unwrap())
                .collect(),
        ));
    }

    let mut entries = Vec::new();
    for (mode, scale, datasets) in modes {
        for dataset in datasets {
            let t0 = Instant::now();
            let net = dataset.build_with_seed(scale, opts.seed);
            eprintln!(
                "[bench {mode}/{}] n = {}, m = {} (built in {:.2?})",
                dataset.name,
                net.num_nodes(),
                net.num_edges(),
                t0.elapsed()
            );
            bench_network(
                &mut entries,
                mode,
                dataset,
                &net,
                queries,
                opts.seed,
                &opts.only,
                &opts.backends,
            )?;
        }
    }

    if let Some(parent) = opts.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    spq_graph::atomic_io::write_atomic(&opts.out, |w| {
        use std::io::Write;
        w.write_all(render_report(&entries).as_bytes())
    })
    .map_err(|e| format!("write {}: {e}", opts.out.display()))?;
    eprintln!(
        "[bench] wrote {} ({} entries)",
        opts.out.display(),
        entries.len()
    );

    // Speed gates only fire when the filters left their rows in the
    // report — `--only distance --backends tnr` must not fail for lack
    // of HL or one-to-many rows.
    let has_ch_distance = entries
        .iter()
        .any(|e| e.backend == "ch" && e.op == "distance");
    if has_ch_distance && entries.iter().any(|e| e.backend == "hl") {
        check_hl_beats_ch(&entries)?;
    }
    if has_ch_distance && entries.iter().any(|e| e.op.starts_with("o2m_")) {
        check_o2m_beats_ch(&entries)?;
    }
    if has_ch_distance && entries.iter().any(|e| e.op.starts_with("distances_batch_")) {
        check_batch_beats_pointwise(&entries)?;
    }

    if let Some(baseline) = &opts.check {
        check_against(&entries, baseline, opts.tolerance)?;
    }
    Ok(entries)
}

/// Enforces the hub-labeling speed claim: per mode, the HL distance
/// median must beat CH's on at least one measured network (on the full
/// Table-1 proxies it wins all four; the weaker per-mode gate keeps CI
/// robust to sub-microsecond jitter on the smoke networks).
pub fn check_hl_beats_ch(entries: &[Entry]) -> Result<(), String> {
    let mut modes: Vec<&str> = entries.iter().map(|e| e.mode.as_str()).collect();
    modes.sort();
    modes.dedup();
    for mode in modes {
        let median_of = |backend: &str, network: &str| -> Option<f64> {
            entries
                .iter()
                .find(|e| {
                    e.mode == mode
                        && e.network == network
                        && e.backend == backend
                        && e.op == "distance"
                })
                .map(|e| e.median_ns)
        };
        let mut networks: Vec<&str> = entries
            .iter()
            .filter(|e| e.mode == mode)
            .map(|e| e.network.as_str())
            .collect();
        networks.sort();
        networks.dedup();
        let mut wins = 0usize;
        let mut rows = Vec::new();
        for network in &networks {
            if let (Some(hl), Some(ch)) = (median_of("hl", network), median_of("ch", network)) {
                rows.push(format!("{network}: hl {hl:.1} ns vs ch {ch:.1} ns"));
                if hl < ch {
                    wins += 1;
                }
            }
        }
        if rows.is_empty() {
            return Err(format!("{mode}: no hl/ch distance rows to compare"));
        }
        if wins == 0 {
            return Err(format!(
                "{mode}: HL slower than CH on every network:\n  {}",
                rows.join("\n  ")
            ));
        }
        eprintln!(
            "[bench] {mode}: HL beats CH on {wins}/{} network(s)",
            rows.len()
        );
    }
    Ok(())
}

/// Enforces the one-to-many speed claim: per (mode, network), one
/// PHAST sweep answering |T| targets must beat |T| independent CH
/// point queries (|T| × the same run's CH distance median), and on the
/// full Table-1 proxies the |T| = 1024 sweep must win by at least
/// [`O2M_FULL_SPEEDUP`]x. The smoke networks only need the plain win:
/// at 1/400 scale a sweep has almost nothing to amortise, so a ratio
/// gate there would measure timer noise.
pub fn check_o2m_beats_ch(entries: &[Entry]) -> Result<(), String> {
    let mut checked = 0usize;
    for e in entries
        .iter()
        .filter(|e| e.backend == "ch" && e.op.starts_with("o2m_"))
    {
        let k: f64 = e.op["o2m_".len()..]
            .parse()
            .map_err(|_| format!("malformed o2m op name '{}'", e.op))?;
        let Some(chd) = entries.iter().find(|c| {
            c.mode == e.mode && c.network == e.network && c.backend == "ch" && c.op == "distance"
        }) else {
            return Err(format!(
                "{}/{}: {} row has no ch distance row to compare against",
                e.mode, e.network, e.op
            ));
        };
        let loop_ns = chd.median_ns * k;
        let required = if e.mode == "full" && k >= 1024.0 {
            O2M_FULL_SPEEDUP
        } else {
            1.0
        };
        let speedup = loop_ns / e.median_ns;
        if speedup < required {
            return Err(format!(
                "{}/{} {}: one sweep costs {:.1} ns vs {:.1} ns for {k:.0} CH point queries \
                 ({speedup:.2}x, need >= {required:.0}x)",
                e.mode, e.network, e.op, e.median_ns, loop_ns
            ));
        }
        eprintln!(
            "[bench] {}/{} {}: sweep beats {k:.0} CH point queries by {speedup:.1}x",
            e.mode, e.network, e.op
        );
        checked += 1;
    }
    if checked == 0 {
        return Err("no o2m rows to gate".into());
    }
    Ok(())
}

/// Enforces the batched-execution speed claim: per (mode, network),
/// the batched kernel's per-entry cost must not lose to one CH point
/// query (the same run's CH distance median), and on the full Table-1
/// proxies the 1024-entry table must win by at least
/// [`BATCH_FULL_SPEEDUP`]x — the amortisation the batch kernel exists
/// to deliver. Smaller tables only need the plain win.
pub fn check_batch_beats_pointwise(entries: &[Entry]) -> Result<(), String> {
    let mut checked = 0usize;
    for e in entries
        .iter()
        .filter(|e| e.backend == "ch" && e.op.starts_with("distances_batch_"))
    {
        let k: f64 = e.op["distances_batch_".len()..]
            .parse()
            .map_err(|_| format!("malformed batch op name '{}'", e.op))?;
        let Some(chd) = entries.iter().find(|c| {
            c.mode == e.mode && c.network == e.network && c.backend == "ch" && c.op == "distance"
        }) else {
            return Err(format!(
                "{}/{}: {} row has no ch distance row to compare against",
                e.mode, e.network, e.op
            ));
        };
        let required = if e.mode == "full" && k >= 1024.0 {
            BATCH_FULL_SPEEDUP
        } else {
            1.0
        };
        let speedup = chd.median_ns / e.median_ns;
        if speedup < required {
            return Err(format!(
                "{}/{} {}: {:.1} ns per batched entry vs {:.1} ns per CH point query \
                 ({speedup:.2}x, need >= {required:.0}x)",
                e.mode, e.network, e.op, e.median_ns, chd.median_ns
            ));
        }
        eprintln!(
            "[bench] {}/{} {}: batched entry beats a CH point query by {speedup:.1}x",
            e.mode, e.network, e.op
        );
        checked += 1;
    }
    if checked == 0 {
        return Err("no distances_batch rows to gate".into());
    }
    Ok(())
}

/// Compares a run against a baseline report, Dijkstra-normalised.
///
/// For every entry of the current run whose (mode, network, backend,
/// op) also exists in the baseline, both medians are divided by their
/// own run's `dijkstra`/`distance` median on the same (mode, network);
/// the entry fails when the current ratio exceeds the baseline ratio by
/// more than `tolerance`. Baseline entries missing from the current run
/// (for the modes that ran) also fail — a backend silently dropping out
/// of the bench must not pass the gate. Cells whose median is under
/// [`NOISE_FLOOR_NS`] on either side are reported but not gated; they
/// still fail when missing entirely.
pub fn check_against(current: &[Entry], baseline: &Path, tolerance: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline)
        .map_err(|e| format!("read baseline {}: {e}", baseline.display()))?;
    let base = parse_report(&text)?;

    let dijkstra_of = |entries: &[Entry], mode: &str, network: &str| -> Option<f64> {
        entries
            .iter()
            .find(|e| {
                e.mode == mode
                    && e.network == network
                    && e.backend == "dijkstra"
                    && e.op == "distance"
            })
            .map(|e| e.median_ns)
    };

    let modes_run: Vec<String> = {
        let mut m: Vec<String> = current.iter().map(|e| e.mode.clone()).collect();
        m.sort();
        m.dedup();
        m
    };

    let mut failures = Vec::new();
    let mut compared = 0usize;
    for b in base.iter().filter(|b| modes_run.contains(&b.mode)) {
        let Some(c) = current.iter().find(|c| c.key() == b.key()) else {
            failures.push(format!(
                "{}/{} {} {}: present in baseline but missing from this run",
                b.mode, b.network, b.backend, b.op
            ));
            continue;
        };
        if b.backend == "dijkstra" && b.op == "distance" {
            continue; // the normalisation unit compares as 1.0 by construction
        }
        if matches!(
            op_family(&b.op),
            "o2m" | "knn" | "range" | "distances_batch"
        ) {
            // Batch-shape medians normalised against a *point*-query
            // unit don't track runner drift at smoke scale; these rows
            // are gated structurally instead (the sweep must beat its
            // point-query decomposition within the same run), so only
            // their presence is enforced here.
            continue;
        }
        compared += 1;
        if b.median_ns < NOISE_FLOOR_NS || c.median_ns < NOISE_FLOOR_NS {
            eprintln!(
                "[bench] {}/{} {} {}: under the {NOISE_FLOOR_NS:.0} ns noise floor ({:.1} ns), not gated",
                b.mode, b.network, b.backend, b.op, c.median_ns
            );
            continue;
        }
        let (Some(bd), Some(cd)) = (
            dijkstra_of(&base, &b.mode, &b.network),
            dijkstra_of(current, &b.mode, &b.network),
        ) else {
            failures.push(format!(
                "{}/{}: no dijkstra distance row to normalise against",
                b.mode, b.network
            ));
            continue;
        };
        let base_ratio = b.median_ns / bd;
        let cur_ratio = c.median_ns / cd;
        if cur_ratio > base_ratio * (1.0 + tolerance) {
            failures.push(format!(
                "{}/{} {} {}: {:.4}x dijkstra vs {:.4}x in baseline (+{:.0}% > {:.0}% tolerance)",
                b.mode,
                b.network,
                b.backend,
                b.op,
                cur_ratio,
                base_ratio,
                (cur_ratio / base_ratio - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if compared == 0 && failures.is_empty() {
        return Err("baseline shares no comparable entries with this run".into());
    }
    if failures.is_empty() {
        eprintln!(
            "[bench] regression check passed: {compared} entries within {:.0}% of {}",
            tolerance * 100.0,
            baseline.display()
        );
        Ok(())
    } else {
        Err(format!(
            "performance regression against {}:\n  {}",
            baseline.display(),
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(mode: &str, network: &str, backend: &str, op: &str, ns: f64) -> Entry {
        Entry {
            mode: mode.into(),
            network: network.into(),
            vertices: 100,
            backend: backend.into(),
            op: op.into(),
            queries: 64,
            median_ns: ns,
        }
    }

    #[test]
    fn report_roundtrips_through_parser() {
        let entries = vec![
            entry("smoke", "DE", "dijkstra", "distance", 51000.4),
            entry("smoke", "DE", "ch", "distance", 850.0),
            entry("full", "CO", "ch", "m2m", 120.7),
        ];
        let text = render_report(&entries);
        assert_eq!(parse_report(&text).unwrap(), entries);
    }

    #[test]
    fn parser_rejects_malformed_entries() {
        let text = "{\n\"entries\": [\n{\"mode\":\"smoke\",\"network\":3}\n]}\n";
        assert!(parse_report(text).unwrap_err().contains("malformed"));
    }

    fn write_baseline(entries: &[Entry]) -> tempdir::TempPath {
        tempdir::write(render_report(entries))
    }

    /// Minimal temp-file helper (no tempfile crate in the workspace).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempPath(pub PathBuf);
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        static N: AtomicU64 = AtomicU64::new(0);

        pub fn write(text: String) -> TempPath {
            let path = std::env::temp_dir().join(format!(
                "spq_bench_test_{}_{}.json",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::write(&path, text).unwrap();
            TempPath(path)
        }
    }

    #[test]
    fn check_passes_when_ratios_hold_despite_machine_speed() {
        let base = vec![
            entry("smoke", "DE", "dijkstra", "distance", 10_000.0),
            entry("smoke", "DE", "ch", "distance", 1_000.0),
        ];
        // Twice as slow across the board: same ratios, must pass.
        let cur = vec![
            entry("smoke", "DE", "dijkstra", "distance", 20_000.0),
            entry("smoke", "DE", "ch", "distance", 2_000.0),
        ];
        let f = write_baseline(&base);
        check_against(&cur, &f.0, 0.25).unwrap();
    }

    #[test]
    fn check_fails_on_relative_regression() {
        let base = vec![
            entry("smoke", "DE", "dijkstra", "distance", 10_000.0),
            entry("smoke", "DE", "ch", "distance", 1_000.0),
        ];
        let cur = vec![
            entry("smoke", "DE", "dijkstra", "distance", 10_000.0),
            entry("smoke", "DE", "ch", "distance", 1_400.0),
        ];
        let f = write_baseline(&base);
        let err = check_against(&cur, &f.0, 0.25).unwrap_err();
        assert!(err.contains("ch distance"), "{err}");
    }

    #[test]
    fn check_skips_sub_noise_floor_cells() {
        let base = vec![
            entry("smoke", "DE", "dijkstra", "distance", 10_000.0),
            entry("smoke", "DE", "tnr", "distance", 40.0),
        ];
        // 3x slower, but 120 ns is under the floor: must not gate.
        let cur = vec![
            entry("smoke", "DE", "dijkstra", "distance", 10_000.0),
            entry("smoke", "DE", "tnr", "distance", 120.0),
        ];
        let f = write_baseline(&base);
        check_against(&cur, &f.0, 0.25).unwrap();
    }

    #[test]
    fn hl_speed_gate_needs_one_win_per_mode() {
        let mut entries = vec![
            entry("smoke", "DE", "ch", "distance", 800.0),
            entry("smoke", "DE", "hl", "distance", 900.0),
            entry("smoke", "NH", "ch", "distance", 900.0),
            entry("smoke", "NH", "hl", "distance", 300.0),
        ];
        check_hl_beats_ch(&entries).unwrap();
        // HL losing everywhere fails the gate.
        entries[3].median_ns = 1_000.0;
        let err = check_hl_beats_ch(&entries).unwrap_err();
        assert!(err.contains("slower than CH on every network"), "{err}");
        // No comparable rows at all is an error, not a silent pass.
        assert!(check_hl_beats_ch(&entries[..1]).is_err());
    }

    #[test]
    fn check_fails_on_missing_entry() {
        let base = vec![
            entry("smoke", "DE", "dijkstra", "distance", 10_000.0),
            entry("smoke", "DE", "ch", "distance", 1_000.0),
        ];
        let cur = vec![entry("smoke", "DE", "dijkstra", "distance", 10_000.0)];
        let f = write_baseline(&base);
        let err = check_against(&cur, &f.0, 0.25).unwrap_err();
        assert!(err.contains("missing from this run"), "{err}");
    }

    #[test]
    fn check_ignores_modes_that_did_not_run() {
        let base = vec![
            entry("smoke", "DE", "dijkstra", "distance", 10_000.0),
            entry("smoke", "DE", "ch", "distance", 1_000.0),
            entry("full", "CO", "dijkstra", "distance", 90_000.0),
            entry("full", "CO", "ch", "distance", 2_000.0),
        ];
        // A --smoke run must not fail on the absent full entries.
        let cur = vec![
            entry("smoke", "DE", "dijkstra", "distance", 10_000.0),
            entry("smoke", "DE", "ch", "distance", 1_050.0),
        ];
        let f = write_baseline(&base);
        check_against(&cur, &f.0, 0.25).unwrap();
    }

    #[test]
    fn o2m_speed_gate_compares_against_k_point_queries() {
        let mut entries = vec![
            entry("full", "DE", "ch", "distance", 1_000.0),
            entry("full", "DE", "ch", "o2m_64", 50_000.0),
            entry("full", "DE", "ch", "o2m_1024", 200_000.0),
        ];
        // 64 × 1000 = 64k > 50k (win) and 1024 × 1000 = 1.024M ≥ 5 ×
        // 200k: both pass.
        check_o2m_beats_ch(&entries).unwrap();
        // Full mode demands the 5x margin at |T| = 1024, not just a win.
        entries[2].median_ns = 500_000.0;
        let err = check_o2m_beats_ch(&entries).unwrap_err();
        assert!(err.contains("need >= 5x"), "{err}");
        // Smoke mode only needs the win.
        for e in &mut entries {
            e.mode = "smoke".into();
        }
        check_o2m_beats_ch(&entries).unwrap();
        // Losing outright fails even in smoke mode.
        entries[1].median_ns = 100_000.0;
        assert!(check_o2m_beats_ch(&entries).is_err());
        // No rows at all is an error, not a silent pass.
        assert!(check_o2m_beats_ch(&entries[..1]).is_err());
    }

    #[test]
    fn batch_speed_gate_compares_per_entry_cost() {
        let mut entries = vec![
            entry("full", "DE", "ch", "distance", 1_000.0),
            entry("full", "DE", "ch", "distances_batch_16", 900.0),
            entry("full", "DE", "ch", "distances_batch_1024", 400.0),
        ];
        // 16-entry table only needs a win; 1024 needs the 2x margin.
        check_batch_beats_pointwise(&entries).unwrap();
        entries[2].median_ns = 600.0;
        let err = check_batch_beats_pointwise(&entries).unwrap_err();
        assert!(err.contains("need >= 2x"), "{err}");
        // Smoke mode only needs the win at any size.
        for e in &mut entries {
            e.mode = "smoke".into();
        }
        check_batch_beats_pointwise(&entries).unwrap();
        // Losing outright fails even in smoke mode.
        entries[1].median_ns = 1_500.0;
        assert!(check_batch_beats_pointwise(&entries).is_err());
        // No rows at all is an error, not a silent pass.
        assert!(check_batch_beats_pointwise(&entries[..1]).is_err());
    }

    #[test]
    fn smoke_bench_produces_consistent_entries() {
        // One real (tiny) network through the whole measurement path.
        let d = Dataset::by_name("DE").unwrap();
        let net = d.build_with_seed(Scale::Divisor(800.0), 7);
        let mut entries = Vec::new();
        bench_network(&mut entries, "smoke", d, &net, 2 * CHUNK, 7, &[], &[]).unwrap();
        // All seven backends (the network is under the all-pairs cap),
        // plus the legacy kernel rows, the path rows, and the m2m row.
        let backends: Vec<&str> = entries.iter().map(|e| e.backend.as_str()).collect();
        for b in [
            "dijkstra",
            "ch",
            "ch_legacy",
            "hl",
            "tnr",
            "silc",
            "pcpd",
            "alt",
            "arcflags",
        ] {
            assert!(backends.contains(&b), "missing backend {b}");
        }
        assert_eq!(entries.iter().filter(|e| e.op == "path").count(), 2);
        assert_eq!(entries.iter().filter(|e| e.op == "m2m").count(), 1);
        // The one-to-many family rides the ch backend: one row per
        // target-set size plus the kNN and range rows, all
        // oracle-audited inside bench_network.
        for op in [
            "o2m_64",
            "o2m_1024",
            "knn8",
            "range",
            "distances_batch_16",
            "distances_batch_256",
            "distances_batch_1024",
        ] {
            assert_eq!(
                entries
                    .iter()
                    .filter(|e| e.backend == "ch" && e.op == op)
                    .count(),
                1,
                "missing ch row for {op}"
            );
        }
        assert!(entries.iter().all(|e| e.median_ns > 0.0));
        // And the rendered report must parse back to the same entries
        // (medians are serialised at 0.1 ns precision — derive the
        // expectation through the same formatter, since `{:.1}` rounds
        // ties to even while `f64::round` rounds them away from zero,
        // and chunk medians land on exact .25/.75 ties).
        let rounded: Vec<Entry> = entries
            .iter()
            .cloned()
            .map(|mut e| {
                e.median_ns = format!("{:.1}", e.median_ns).parse().unwrap();
                e
            })
            .collect();
        assert_eq!(parse_report(&render_report(&entries)).unwrap(), rounded);
    }

    #[test]
    fn bench_filters_subset_the_measured_cells() {
        let d = Dataset::by_name("DE").unwrap();
        let net = d.build_with_seed(Scale::Divisor(800.0), 7);
        let mut entries = Vec::new();
        bench_network(
            &mut entries,
            "smoke",
            d,
            &net,
            2 * CHUNK,
            7,
            &["distance".into()],
            &["ch".into(), "hl".into()],
        )
        .unwrap();
        // Dijkstra is exempt from both filters (it is the
        // normalisation unit); everything else obeys them.
        let mut rows: Vec<(&str, &str)> = entries
            .iter()
            .map(|e| (e.backend.as_str(), e.op.as_str()))
            .collect();
        rows.sort_unstable();
        assert_eq!(
            rows,
            vec![
                ("ch", "distance"),
                ("dijkstra", "distance"),
                ("hl", "distance"),
            ]
        );

        // An op-family filter selects every parameterisation of the
        // family without rebuilding anything else.
        let mut o2m_only = Vec::new();
        bench_network(
            &mut o2m_only,
            "smoke",
            d,
            &net,
            2 * CHUNK,
            7,
            &["o2m".into()],
            &["ch".into()],
        )
        .unwrap();
        let ops: Vec<&str> = o2m_only
            .iter()
            .filter(|e| e.backend == "ch")
            .map(|e| e.op.as_str())
            .collect();
        assert_eq!(ops, vec!["o2m_64", "o2m_1024"]);
    }
}
