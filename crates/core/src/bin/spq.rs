//! `spq` — command-line front end for the workspace.
//!
//! ```text
//! spq registry                               list the Table-1 datasets
//! spq generate --target N [--seed S] --out P write P.gr / P.co (DIMACS)
//! spq info --net P                           network statistics
//! spq prep --net P --out F [--kind ch|hl|poi] build + persist a CH/HL index or POI set
//! spq query --net P --from S --to T          answer one query
//!           [--technique dijkstra|ch|tnr|silc|pcpd] [--ch F.ch] [--path]
//! spq verify --net P [--samples N] [--seed S] certify all techniques
//! spq serve --net P [--addr A] [--backends L] run the query server
//!           [--reload-file P] [--no-audit]    (hot reload + oracle audit)
//! spq loadgen --net P [--concurrency L]      measure serving throughput
//!             [--reload-every S]              (hot reloads mid-sweep)
//! spq bench --json [--smoke] [--check B]     query-latency report + regression gate
//! ```
//!
//! `--net P` loads `P.gr` + `P.co` (DIMACS text); `serve` and `loadgen`
//! also accept `--target N` to synthesise a network instead.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use spq_core::{Index, Technique};
use spq_graph::atomic_io;
use spq_graph::size::IndexSize;
use spq_graph::RoadNetwork;
use spq_serve::loadgen::{run_in_process, write_csv, LoadgenOptions, ThroughputRow};
use spq_serve::server::{install_signal_handlers, Server, ServerConfig};
use spq_serve::{AuditConfig, BackendKind, BackendSpec, Engine};
use spq_synth::{SynthParams, DATASETS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(|s| s.as_str()) {
        Some("registry") => registry(),
        Some("generate") => generate(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("prep") => prep(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("loadgen") => loadgen(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("qgen") => qgen(&args[1..]),
        Some("torture") => torture(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "spq — shortest path and distance queries on road networks\n\n\
         commands:\n\
         \x20 registry                               list the Table-1 datasets\n\
         \x20 generate --target N [--seed S] --out P write P.gr / P.co\n\
         \x20 info --net P                           network statistics\n\
         \x20 prep --net P --out F [--kind ch|hl|poi] [--name N] [--count K]\n\
         \x20                                        build + persist a CH/HL index or POI set\n\
         \x20 query --net P --from S --to T [--technique T] [--ch F.ch] [--path]\n\
         \x20 verify --net P [--samples N] [--seed S] certify all techniques\n\
         \x20 serve (--net P | --target N) [--addr A] [--backends L] [--workers N]\n\
         \x20       [--shards N] [--pipeline-depth N] [--cache N] [--index kind=path]*\n\
         \x20       [--no-degrade] [--grace-ms N]\n\
         \x20       [--max-pending N] [--selfcheck-queries N] [--selfcheck-seed S]\n\
         \x20       [--reload-file P] [--reload-poll-ms N] [--no-audit]\n\
         \x20       [--audit-interval-ms N] [--audit-queries N] [--audit-threshold N]\n\
         \x20       [--no-failover] [--restart-cap N] [--restart-window-ms N]\n\
         \x20       [--wbuf-cap BYTES] [--mem-budget BYTES] [--max-connections N]\n\
         \x20       [--stall-timeout-ms N] [--write-timeout-ms N]\n\
         \x20                                        run the TCP query server\n\
         \x20 loadgen (--net P | --target N) [--backends L] [--concurrency L]\n\
         \x20         [--connections N] [--churn-every N] [--duration S]\n\
         \x20         [--warmup-ms N] [--reload-every S] [--out F]\n\
         \x20         [--mix distance:8,o2m:2,knn:1,range:1] [--workload F]\n\
         \x20         [--slow-readers N] [--slow-reader-rate BPS]\n\
         \x20                                        measure serving throughput\n\
         \x20 bench --json [--smoke] [--out F] [--check BASELINE] [--tolerance R]\n\
         \x20       [--queries N] [--seed S] [--only OPS] [--backends L]\n\
         \x20                                        query-latency report + regression gate\n\
         \x20                                        (OPS: distance,path,m2m,o2m,knn,range,\n\
         \x20                                         distances_batch)\n\
         \x20 qgen (--net P | --target N) --out F [--seed S] [--o2m-sets N]\n\
         \x20      [--o2m-targets N] [--knn-ks N] [--range-radii N]\n\
         \x20                                        persist seeded workload shapes (SPQW)\n\
         \x20 torture [--dir D] [--seed S] [--rounds N] [--target N] [--no-minimize]\n\
         \x20         [--artifact F] [--startup-timeout-s N] [--resource]\n\
         \x20                                        crash/chaos recovery harness\n\
         \x20                                        (--resource: fd/disk/memory/slow-reader\n\
         \x20                                         exhaustion schedules)\n\n\
         serve/loadgen backends: dijkstra,ch,tnr,silc,pcpd,alt,arcflags,hl (or 'all');\n\
         see README.md for the wire protocol."
    );
}

/// Extracts `--key value` from an argument list.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Extracts every `--key value` occurrence (for repeatable flags).
fn opt_all<'a>(args: &'a [String], key: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == key)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(|s| s.as_str())
        .collect()
}

fn required<'a>(args: &'a [String], key: &str) -> Result<&'a str, String> {
    opt(args, key).ok_or_else(|| format!("missing required option {key}"))
}

fn load_net(base: &str) -> Result<RoadNetwork, String> {
    let gr = File::open(format!("{base}.gr")).map_err(|e| format!("cannot open {base}.gr: {e}"))?;
    let co = File::open(format!("{base}.co")).map_err(|e| format!("cannot open {base}.co: {e}"))?;
    spq_graph::dimacs::read(BufReader::new(gr), BufReader::new(co))
        .map_err(|e| format!("cannot parse {base}: {e}"))
}

fn registry() -> Result<(), String> {
    println!(
        "{:<6} {:<22} {:>12} {:>12}",
        "name", "region", "vertices", "edges"
    );
    for d in &DATASETS {
        println!(
            "{:<6} {:<22} {:>12} {:>12}",
            d.name, d.region, d.paper_vertices, d.paper_edges
        );
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let target: usize = required(args, "--target")?
        .parse()
        .map_err(|_| "--target must be an integer".to_string())?;
    let seed: u64 = opt(args, "--seed")
        .map(|s| {
            s.parse()
                .map_err(|_| "--seed must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(0x5eed_0002);
    let out = required(args, "--out")?;
    let net = spq_synth::generate(&SynthParams::with_target_vertices(target, seed));
    atomic_io::write_atomic(format!("{out}.gr"), |w| {
        spq_graph::dimacs::write_gr(&net, w)
    })
    .map_err(|e| e.to_string())?;
    atomic_io::write_atomic(format!("{out}.co"), |w| {
        spq_graph::dimacs::write_co(&net, w)
    })
    .map_err(|e| e.to_string())?;
    println!(
        "wrote {out}.gr / {out}.co — {} vertices, {} edges",
        net.num_nodes(),
        net.num_edges()
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let net = load_net(required(args, "--net")?)?;
    let rect = net.bounding_rect();
    println!("vertices:    {}", net.num_nodes());
    println!("edges:       {}", net.num_edges());
    println!("arcs:        {}", net.num_arcs());
    println!("max degree:  {}", net.max_degree());
    println!(
        "avg degree:  {:.2}",
        net.num_arcs() as f64 / net.num_nodes() as f64
    );
    println!(
        "bounding:    ({}, {}) .. ({}, {})",
        rect.min_x, rect.min_y, rect.max_x, rect.max_y
    );
    println!(
        "memory:      {:.2} MB (CSR + coordinates)",
        net.index_size_mb()
    );
    Ok(())
}

fn prep(args: &[String]) -> Result<(), String> {
    let net = load_net(required(args, "--net")?)?;
    let out = required(args, "--out")?;
    let kind = opt(args, "--kind").unwrap_or("ch");
    let t0 = std::time::Instant::now();
    match kind {
        "ch" => {
            let ch = spq_ch::ContractionHierarchy::build(&net);
            let elapsed = t0.elapsed();
            atomic_io::write_atomic(out, |w| ch.write_binary(w)).map_err(|e| e.to_string())?;
            println!(
                "built CH in {:.2?}: {} shortcuts, {:.2} MB -> {out}",
                elapsed,
                ch.num_shortcuts(),
                ch.index_size_mb()
            );
        }
        "hl" => {
            let hl = spq_hl::Hl::build(&net);
            let elapsed = t0.elapsed();
            atomic_io::write_atomic(out, |w| hl.write_binary(w)).map_err(|e| e.to_string())?;
            println!(
                "built HL in {:.2?}: {} label entries ({:.1} avg / {} max per vertex), \
                 {:.2} MB -> {out}",
                elapsed,
                hl.labels().num_entries(),
                hl.labels().avg_label_len(),
                hl.labels().max_label_len(),
                hl.index_size_mb()
            );
        }
        "poi" => {
            // A POI container for the one-to-many serving path: a
            // named, checksummed vertex set the server indexes against
            // its own hierarchy at registration (`poi=` reload lines).
            let name = opt(args, "--name").unwrap_or("poi");
            let count: usize = match opt(args, "--count") {
                Some(s) => s
                    .parse()
                    .map_err(|_| "--count must be an integer".to_string())?,
                None => (net.num_nodes() / 16).clamp(1, 4096),
            };
            let seed: u64 = match opt(args, "--seed") {
                Some(s) => s
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?,
                None => 0x5eed_0bec,
            };
            let set = spq_many::PoiSet::sample(&net, name, count, seed)?;
            let elapsed = t0.elapsed();
            atomic_io::write_atomic(out, |w| set.write_binary(w)).map_err(|e| e.to_string())?;
            println!(
                "sampled POI set '{}' in {:.2?}: {} vertices -> {out}",
                set.name(),
                elapsed,
                set.len()
            );
        }
        other => return Err(format!("--kind must be ch, hl, or poi, got '{other}'")),
    }
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let net = load_net(required(args, "--net")?)?;
    let s: u32 = required(args, "--from")?
        .parse()
        .map_err(|_| "--from must be a vertex id".to_string())?;
    let t: u32 = required(args, "--to")?
        .parse()
        .map_err(|_| "--to must be a vertex id".to_string())?;
    if s as usize >= net.num_nodes() || t as usize >= net.num_nodes() {
        return Err(format!(
            "vertex out of range (network has {} vertices)",
            net.num_nodes()
        ));
    }
    let want_path = flag(args, "--path");

    // A persisted CH takes precedence; otherwise build per --technique.
    if let Some(ch_path) = opt(args, "--ch") {
        let f = File::open(ch_path).map_err(|e| format!("cannot open {ch_path}: {e}"))?;
        let ch = spq_ch::ContractionHierarchy::read_binary(&mut BufReader::new(f))
            .map_err(|e| format!("cannot load {ch_path}: {e}"))?;
        if ch.num_nodes() != net.num_nodes() {
            return Err("CH index does not match the network".into());
        }
        let mut q = spq_ch::ChQuery::new(&ch);
        return answer(
            "CH(file)",
            q.distance(s, t),
            want_path.then(|| q.shortest_path(s, t)).flatten(),
            s,
            t,
        );
    }

    let technique = match opt(args, "--technique").unwrap_or("ch") {
        "dijkstra" => Technique::BiDijkstra,
        "ch" => Technique::Ch,
        "tnr" => Technique::Tnr,
        "silc" => Technique::Silc,
        "pcpd" => Technique::Pcpd,
        other => return Err(format!("unknown technique '{other}'")),
    };
    let (index, elapsed) = Index::build(technique, &net);
    eprintln!("[{} preprocessing: {:.2?}]", technique.name(), elapsed);
    let mut q = index.query(&net);
    answer(
        technique.name(),
        q.distance(s, t),
        want_path.then(|| q.shortest_path(s, t)).flatten(),
        s,
        t,
    )
}

fn verify(args: &[String]) -> Result<(), String> {
    let net = load_net(required(args, "--net")?)?;
    let samples: usize = opt(args, "--samples")
        .map(|s| {
            s.parse()
                .map_err(|_| "--samples must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(100);
    let seed: u64 = opt(args, "--seed")
        .map(|s| {
            s.parse()
                .map_err(|_| "--seed must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(7);
    let mut failed = false;
    for technique in Technique::ALL {
        if technique.needs_all_pairs() && net.num_nodes() > 24_000 {
            println!(
                "{:<9} skipped (all-pairs preprocessing on a large network)",
                technique.name()
            );
            continue;
        }
        let (index, elapsed) = Index::build(technique, &net);
        let report = spq_core::verify_index(&net, &index, samples, seed);
        let status = if report.is_clean() { "ok" } else { "DEFECTIVE" };
        println!(
            "{:<9} {:>4} queries checked, {} defects ({status}; prep {:.2?})",
            technique.name(),
            report.checked,
            report.defects.len(),
            elapsed
        );
        failed |= !report.is_clean();
    }
    if failed {
        Err("verification found defects".into())
    } else {
        Ok(())
    }
}

/// Shared by `serve` and `loadgen`: `--net P` loads DIMACS, otherwise
/// `--target N` (default 2000) synthesises a network.
fn serve_network(args: &[String]) -> Result<RoadNetwork, String> {
    if let Some(base) = opt(args, "--net") {
        return load_net(base);
    }
    let target: usize = opt(args, "--target")
        .map(|s| {
            s.parse()
                .map_err(|_| "--target must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(2000);
    let seed: u64 = opt(args, "--seed")
        .map(|s| {
            s.parse()
                .map_err(|_| "--seed must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(42);
    Ok(spq_synth::generate(&SynthParams::with_target_vertices(
        target, seed,
    )))
}

fn serve_backends(args: &[String]) -> Result<Vec<BackendKind>, String> {
    match opt(args, "--backends") {
        Some(list) => BackendKind::parse_list(list),
        None => Ok(BackendKind::DEFAULT.to_vec()),
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let net = serve_network(args)?;
    eprintln!(
        "serving network: {} vertices, {} edges",
        net.num_nodes(),
        net.num_edges()
    );

    // Backend specs: --backends names the set, each repeatable
    // `--index kind=path` loads that backend from a persisted index
    // instead of building it (and adds the kind if it was not listed).
    let mut specs: Vec<BackendSpec> = serve_backends(args)?
        .into_iter()
        .map(BackendSpec::built)
        .collect();
    for raw in opt_all(args, "--index") {
        let spec = BackendSpec::parse(raw)?;
        match specs.iter_mut().find(|s| s.kind == spec.kind) {
            Some(existing) => *existing = spec,
            None => specs.push(spec),
        }
    }
    let degrade = !flag(args, "--no-degrade");
    let engine = Engine::build_with_indexes(net, &specs, degrade)?;
    for d in engine.degradations() {
        eprintln!(
            "WARNING: serving {} via {} ({})",
            d.requested.name(),
            d.served_by.name(),
            d.reason
        );
    }
    // The startup gate: refuse to serve from an index that disagrees
    // with the Dijkstra oracle (returning Err exits non-zero). The same
    // sample count and seed gate every reload before publication.
    let selfcheck_queries: usize = opt(args, "--selfcheck-queries")
        .map(|s| {
            s.parse()
                .map_err(|_| "--selfcheck-queries must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(32);
    let selfcheck_seed: u64 = opt(args, "--selfcheck-seed")
        .map(|s| {
            s.parse()
                .map_err(|_| "--selfcheck-seed must be an integer".to_string())
        })
        .transpose()?
        .unwrap_or(7);
    engine
        .self_check(selfcheck_queries, selfcheck_seed)
        .map_err(|e| format!("refusing to serve: {e}"))?;
    eprintln!(
        "self-check passed for {} backend(s) ({selfcheck_queries} queries, seed {selfcheck_seed})",
        engine.backends().len()
    );

    let mut cfg = ServerConfig {
        selfcheck_queries,
        selfcheck_seed,
        ..ServerConfig::default()
    };
    if let Some(addr) = opt(args, "--addr") {
        cfg.addr = addr.to_string();
    }
    if let Some(w) = opt(args, "--workers") {
        cfg.workers = w
            .parse()
            .map_err(|_| "--workers must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--shards") {
        cfg.shards = s
            .parse()
            .map_err(|_| "--shards must be an integer".to_string())?;
    }
    if let Some(d) = opt(args, "--pipeline-depth") {
        cfg.pipeline_depth = d
            .parse()
            .map_err(|_| "--pipeline-depth must be an integer".to_string())?;
    }
    if let Some(c) = opt(args, "--cache") {
        cfg.cache_capacity = c
            .parse()
            .map_err(|_| "--cache must be an integer".to_string())?;
    }
    if let Some(g) = opt(args, "--grace-ms") {
        cfg.grace = Duration::from_millis(
            g.parse()
                .map_err(|_| "--grace-ms must be an integer".to_string())?,
        );
    }
    if let Some(p) = opt(args, "--max-pending") {
        cfg.max_pending = p
            .parse()
            .map_err(|_| "--max-pending must be an integer".to_string())?;
    }
    if let Some(c) = opt(args, "--restart-cap") {
        cfg.restart_cap = c
            .parse()
            .map_err(|_| "--restart-cap must be an integer".to_string())?;
    }
    if let Some(ms) = opt(args, "--restart-window-ms") {
        cfg.restart_window = Duration::from_millis(
            ms.parse()
                .map_err(|_| "--restart-window-ms must be an integer".to_string())?,
        );
    }
    // Resource-exhaustion knobs: per-connection write backlog cap,
    // global memory budget, admission limit, and how long a stalled
    // writer may hold a capped backlog before being force-closed.
    if let Some(b) = opt(args, "--wbuf-cap") {
        cfg.wbuf_cap = b
            .parse()
            .map_err(|_| "--wbuf-cap must be a byte count".to_string())?;
    }
    if let Some(b) = opt(args, "--mem-budget") {
        cfg.mem_budget = b
            .parse()
            .map_err(|_| "--mem-budget must be a byte count".to_string())?;
    }
    if let Some(n) = opt(args, "--max-connections") {
        cfg.max_connections = n
            .parse()
            .map_err(|_| "--max-connections must be an integer".to_string())?;
    }
    if let Some(ms) = opt(args, "--stall-timeout-ms") {
        cfg.stall_timeout = Duration::from_millis(
            ms.parse()
                .map_err(|_| "--stall-timeout-ms must be an integer".to_string())?,
        );
    }
    if let Some(ms) = opt(args, "--write-timeout-ms") {
        cfg.write_timeout = Duration::from_millis(
            ms.parse()
                .map_err(|_| "--write-timeout-ms must be an integer".to_string())?,
        );
    }
    // The fd-squeeze env hook: a torture child lowers its own
    // RLIMIT_NOFILE before binding, so the whole accept path runs
    // starved from the first connection.
    if let Ok(v) = std::env::var(spq_serve::eventloop::FD_LIMIT_ENV) {
        let target: u64 = v.parse().map_err(|_| {
            format!(
                "{} must be an integer, got '{v}'",
                spq_serve::eventloop::FD_LIMIT_ENV
            )
        })?;
        let now = spq_serve::eventloop::lower_nofile_limit(target);
        eprintln!(
            "fd soft limit lowered to {now} (env {})",
            spq_serve::eventloop::FD_LIMIT_ENV
        );
    }
    // Hot reload: a watched spec file (see README) makes RELOAD frames,
    // SIGHUP, and file edits swap the index without dropping the server.
    if let Some(p) = opt(args, "--reload-file") {
        cfg.reload_file = Some(std::path::PathBuf::from(p));
        eprintln!("hot reload enabled: watching {p} (also RELOAD frames and SIGHUP)");
    }
    if let Some(ms) = opt(args, "--reload-poll-ms") {
        cfg.reload_poll = Duration::from_millis(
            ms.parse()
                .map_err(|_| "--reload-poll-ms must be an integer".to_string())?,
        );
    }
    // Continuous oracle auditing is on by default for a long-running
    // server; --no-audit turns the background checker off.
    if !flag(args, "--no-audit") {
        let mut audit = AuditConfig {
            failover: !flag(args, "--no-failover"),
            ..AuditConfig::default()
        };
        if let Some(ms) = opt(args, "--audit-interval-ms") {
            audit.interval = Duration::from_millis(
                ms.parse()
                    .map_err(|_| "--audit-interval-ms must be an integer".to_string())?,
            );
        }
        if let Some(q) = opt(args, "--audit-queries") {
            audit.queries = q
                .parse()
                .map_err(|_| "--audit-queries must be an integer".to_string())?;
        }
        if let Some(t) = opt(args, "--audit-threshold") {
            audit.threshold = t
                .parse()
                .map_err(|_| "--audit-threshold must be an integer".to_string())?;
        }
        audit.seed = selfcheck_seed;
        cfg.audit = Some(audit);
    } else if flag(args, "--no-failover") {
        return Err("--no-failover only makes sense with auditing enabled".into());
    }
    install_signal_handlers();
    let server = Server::start(Arc::new(engine), &cfg).map_err(|e| format!("bind: {e}"))?;
    println!("listening on {}", server.local_addr());
    while !server.shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
    }
    server.request_shutdown(); // propagate a signal-initiated stop
    eprintln!("shutting down\n--- final stats ---\n{}", server.join());
    Ok(())
}

fn loadgen(args: &[String]) -> Result<(), String> {
    let net = serve_network(args)?;
    let mut opts = LoadgenOptions {
        backends: serve_backends(args)?,
        ..LoadgenOptions::default()
    };
    if let Some(list) = opt(args, "--concurrency") {
        opts.concurrency = list
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(|p| {
                p.parse::<usize>()
                    .map_err(|_| format!("--concurrency: cannot parse '{p}'"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if opts.concurrency.is_empty() || opts.concurrency.contains(&0) {
            return Err("--concurrency needs positive thread counts".into());
        }
    }
    if let Some(s) = opt(args, "--connections") {
        opts.connections = s
            .parse()
            .map_err(|_| "--connections must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--churn-every") {
        opts.churn_every = s
            .parse()
            .map_err(|_| "--churn-every must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--duration") {
        opts.duration = Duration::from_secs_f64(
            s.parse()
                .map_err(|_| "--duration must be a number of seconds".to_string())?,
        );
    }
    if let Some(s) = opt(args, "--warmup-ms") {
        opts.warmup = Duration::from_millis(
            s.parse()
                .map_err(|_| "--warmup-ms must be an integer".to_string())?,
        );
    }
    if let Some(s) = opt(args, "--seed") {
        opts.seed = s
            .parse()
            .map_err(|_| "--seed must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--reload-every") {
        let secs: f64 = s
            .parse()
            .map_err(|_| "--reload-every must be a number of seconds".to_string())?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err("--reload-every must be positive".into());
        }
        opts.reload_every = Some(Duration::from_secs_f64(secs));
    }
    if let Some(s) = opt(args, "--mix") {
        opts.mix = spq_serve::loadgen::OpMix::parse(s)?;
    }
    if let Some(p) = opt(args, "--workload") {
        let mut f = File::open(p).map_err(|e| format!("cannot open {p}: {e}"))?;
        opts.workload = Some(
            spq_queries::shapes::Workload::read_binary(&mut f)
                .map_err(|e| format!("cannot load workload {p}: {e}"))?,
        );
    }
    if let Some(s) = opt(args, "--slow-readers") {
        opts.slow_readers = s
            .parse()
            .map_err(|_| "--slow-readers must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--slow-reader-rate") {
        opts.slow_reader_rate = s
            .parse()
            .map_err(|_| "--slow-reader-rate must be bytes/second".to_string())?;
    }
    let (report, stats) = run_in_process(net, &opts)?;
    eprintln!("--- final server stats ---\n{stats}");

    let out = opt(args, "--out").unwrap_or("results/serve_throughput.csv");
    write_csv(&report.rows, std::path::Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("{}", ThroughputRow::CSV_HEADER);
    for row in &report.rows {
        println!("{}", row.to_csv());
    }
    if let Some(e) = &report.error {
        return Err(format!(
            "sweep died mid-run ({} partial row(s) written): {e}",
            report.rows.len()
        ));
    }
    let mismatches = report.mismatches();
    if mismatches > 0 {
        return Err(format!("{mismatches} answer(s) disagreed with the oracle"));
    }
    if report.rows.iter().any(|r| r.requests == 0) {
        return Err("a run completed zero requests".into());
    }
    println!("wrote {out}");
    Ok(())
}

fn bench(args: &[String]) -> Result<(), String> {
    if !flag(args, "--json") {
        return Err("spq bench only has a JSON report; pass --json".into());
    }
    let mut opts = spq_core::bench::BenchOptions {
        smoke_only: flag(args, "--smoke"),
        ..spq_core::bench::BenchOptions::default()
    };
    if let Some(s) = opt(args, "--out") {
        opts.out = s.into();
    }
    if let Some(s) = opt(args, "--check") {
        opts.check = Some(s.into());
    }
    if let Some(s) = opt(args, "--tolerance") {
        opts.tolerance = s
            .parse()
            .map_err(|_| "--tolerance must be a number (0.25 = 25%)".to_string())?;
        if !opts.tolerance.is_finite() || opts.tolerance <= 0.0 {
            return Err("--tolerance must be positive".into());
        }
    }
    if let Some(s) = opt(args, "--queries") {
        opts.queries = s
            .parse()
            .map_err(|_| "--queries must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--seed") {
        opts.seed = s
            .parse()
            .map_err(|_| "--seed must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--only") {
        opts.only = s.split(',').map(|p| p.trim().to_string()).collect();
    }
    if let Some(s) = opt(args, "--backends") {
        opts.backends = s.split(',').map(|p| p.trim().to_string()).collect();
    }
    spq_core::bench::run(&opts)?;
    Ok(())
}

fn qgen(args: &[String]) -> Result<(), String> {
    use spq_queries::shapes::{generate_workload, ShapeGenParams};
    let net = serve_network(args)?;
    let out = required(args, "--out")?;
    let mut params = ShapeGenParams::default();
    if let Some(s) = opt(args, "--seed") {
        params.seed = s
            .parse()
            .map_err(|_| "--seed must be an integer".to_string())?;
    }
    for (key, slot) in [
        ("--o2m-sets", &mut params.o2m_sets),
        ("--o2m-targets", &mut params.o2m_targets),
        ("--knn-ks", &mut params.knn_ks),
        ("--range-radii", &mut params.range_radii),
    ] {
        if let Some(s) = opt(args, key) {
            *slot = s.parse().map_err(|_| format!("{key} must be an integer"))?;
        }
    }
    let workload = generate_workload(&net, &params);
    atomic_io::write_atomic(out, |w| workload.write_binary(w))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: seed {}, {} o2m set(s) × {} target(s), k-sweep {:?}, {} radii",
        workload.seed,
        workload.o2m_sets.len(),
        workload.o2m_sets.first().map(Vec::len).unwrap_or(0),
        workload.knn_ks,
        workload.range_radii.len()
    );
    Ok(())
}

fn torture(args: &[String]) -> Result<(), String> {
    use spq_serve::torture::{run_torture, TortureOptions};
    let mut opts = TortureOptions {
        spq_bin: std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?,
        dir: opt(args, "--dir").unwrap_or("torture-scratch").into(),
        minimize: !flag(args, "--no-minimize"),
        artifact: opt(args, "--artifact").map(Into::into),
        resource: flag(args, "--resource"),
        ..TortureOptions::default()
    };
    if let Some(s) = opt(args, "--seed") {
        opts.seed = s
            .parse()
            .map_err(|_| "--seed must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--rounds") {
        opts.rounds = s
            .parse()
            .map_err(|_| "--rounds must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--target") {
        opts.target = s
            .parse()
            .map_err(|_| "--target must be an integer".to_string())?;
    }
    if let Some(s) = opt(args, "--startup-timeout-s") {
        opts.startup_timeout = Duration::from_secs(
            s.parse()
                .map_err(|_| "--startup-timeout-s must be an integer".to_string())?,
        );
    }
    let report = run_torture(&opts)?;
    print!("{}", report.render());
    if report.failures() > 0 {
        return Err(format!(
            "{} torture round(s) failed (seed {})",
            report.failures(),
            report.seed
        ));
    }
    Ok(())
}

fn answer(
    label: &str,
    dist: Option<u64>,
    path: Option<(u64, Vec<u32>)>,
    s: u32,
    t: u32,
) -> Result<(), String> {
    match dist {
        Some(d) => println!("{label}: dist({s}, {t}) = {d}"),
        None => println!("{label}: {t} unreachable from {s}"),
    }
    if let Some((d, p)) = path {
        println!("path ({} vertices, length {d}):", p.len());
        let rendered: Vec<String> = p.iter().map(|v| v.to_string()).collect();
        println!("  {}", rendered.join(" -> "));
    }
    Ok(())
}
