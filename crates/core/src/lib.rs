//! `spq` — shortest path and distance queries on road networks.
//!
//! A from-scratch Rust implementation of the experimental framework of
//! Wu et al., *"Shortest Path and Distance Queries on Road Networks: An
//! Experimental Evaluation"* (PVLDB 5(5), 2012): the five evaluated
//! techniques behind one API, the synthetic road-network substrate, and
//! the workload generators driving every table and figure of the paper.
//!
//! | Technique | Category | Crate |
//! |---|---|---|
//! | bidirectional Dijkstra (baseline) | — | [`spq_dijkstra`] |
//! | Contraction Hierarchies (CH) | vertex importance | [`spq_ch`] |
//! | Transit Node Routing (TNR) | vertex importance | [`spq_tnr`] |
//! | SILC | spatial coherence | [`spq_silc`] |
//! | PCPD | spatial coherence | [`spq_pcpd`] |
//!
//! # Quick start
//!
//! ```
//! use spq_core::{Index, Technique};
//! use spq_synth::SynthParams;
//!
//! let net = spq_synth::generate(&SynthParams::with_target_vertices(500, 1));
//! let (index, _elapsed) = Index::build(Technique::Ch, &net);
//! let mut q = index.query(&net);
//! let t = (net.num_nodes() - 1) as u32;
//! let (d, path) = q.shortest_path(0, t).unwrap();
//! assert_eq!(net.path_length(&path), Some(d));
//! ```

pub mod bench;
pub mod oracle;
pub mod verify;

pub use oracle::{Index, OracleQuery, Technique};
pub use verify::{verify_index, VerifyReport};

// Re-export the component crates so downstream users depend on one crate.
pub use spq_ch as ch;
pub use spq_dijkstra as dijkstra;
pub use spq_graph as graph;
pub use spq_pcpd as pcpd;
pub use spq_queries as queries;
pub use spq_silc as silc;
pub use spq_synth as synth;
pub use spq_tnr as tnr;
