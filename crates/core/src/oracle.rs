//! One interface over the five evaluated techniques.
//!
//! The experiment harness iterates `Technique`s exactly like the paper
//! iterates its five methods: build an [`Index`] (timed — Figure 6(b)),
//! measure its [`Index::size_bytes`] (Figure 6(a)), then answer distance
//! and shortest-path queries through an [`OracleQuery`] workspace
//! (Figures 7–11, 14–17).

use std::time::{Duration, Instant};

use spq_graph::size::IndexSize;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

use spq_ch::{ChQuery, ContractionHierarchy};
use spq_dijkstra::BiDijkstra;
use spq_pcpd::{Pcpd, PcpdQuery};
use spq_silc::{Silc, SilcQuery};
use spq_tnr::{Tnr, TnrParams, TnrQuery};

/// The five techniques of the paper's §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Bidirectional Dijkstra — the index-free baseline (§3.1).
    BiDijkstra,
    /// Contraction Hierarchies (§3.2).
    Ch,
    /// Transit Node Routing with CH fallback on the paper's preferred
    /// 128×128 grid (§3.3, Appendix E.1).
    Tnr,
    /// SILC (§3.4).
    Silc,
    /// PCPD (§3.5).
    Pcpd,
}

impl Technique {
    /// All five, in the paper's presentation order.
    pub const ALL: [Technique; 5] = [
        Technique::BiDijkstra,
        Technique::Ch,
        Technique::Tnr,
        Technique::Silc,
        Technique::Pcpd,
    ];

    /// Display name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::BiDijkstra => "Dijkstra",
            Technique::Ch => "CH",
            Technique::Tnr => "TNR",
            Technique::Silc => "SILC",
            Technique::Pcpd => "PCPD",
        }
    }

    /// Whether preprocessing requires all-pairs shortest paths, the cost
    /// that confines the technique to the smallest datasets (§4.3).
    pub fn needs_all_pairs(&self) -> bool {
        matches!(self, Technique::Silc | Technique::Pcpd)
    }
}

/// A preprocessed index for one technique over one network.
pub enum Index {
    /// The baseline has no index.
    BiDijkstra,
    /// A contraction hierarchy.
    Ch(ContractionHierarchy),
    /// A transit-node index.
    Tnr(Box<Tnr>),
    /// A SILC index.
    Silc(Silc),
    /// A PCPD index.
    Pcpd(Pcpd),
}

impl Index {
    /// Runs the technique's preprocessing, returning the index and the
    /// wall-clock preprocessing time (Figure 6(b)).
    pub fn build(technique: Technique, net: &RoadNetwork) -> (Index, Duration) {
        let start = Instant::now();
        let index = match technique {
            Technique::BiDijkstra => Index::BiDijkstra,
            Technique::Ch => Index::Ch(ContractionHierarchy::build(net)),
            Technique::Tnr => Index::Tnr(Box::new(Tnr::build(net, &TnrParams::default()))),
            Technique::Silc => Index::Silc(Silc::build(net)),
            Technique::Pcpd => Index::Pcpd(Pcpd::build(net)),
        };
        (index, start.elapsed())
    }

    /// Builds TNR with explicit parameters (the Appendix E.1 variants).
    pub fn build_tnr(net: &RoadNetwork, params: &TnrParams) -> (Index, Duration) {
        let start = Instant::now();
        let index = Index::Tnr(Box::new(Tnr::build(net, params)));
        (index, start.elapsed())
    }

    /// The technique this index serves.
    pub fn technique(&self) -> Technique {
        match self {
            Index::BiDijkstra => Technique::BiDijkstra,
            Index::Ch(_) => Technique::Ch,
            Index::Tnr(_) => Technique::Tnr,
            Index::Silc(_) => Technique::Silc,
            Index::Pcpd(_) => Technique::Pcpd,
        }
    }

    /// Index footprint in bytes (0 for the baseline) — Figure 6(a).
    pub fn size_bytes(&self) -> usize {
        match self {
            Index::BiDijkstra => 0,
            Index::Ch(ch) => ch.index_size_bytes(),
            Index::Tnr(tnr) => tnr.index_size_bytes(),
            Index::Silc(s) => s.index_size_bytes(),
            Index::Pcpd(p) => p.index_size_bytes(),
        }
    }

    /// Creates a reusable query workspace over this index and the
    /// network it was built from.
    pub fn query<'a>(&'a self, net: &'a RoadNetwork) -> OracleQuery<'a> {
        match self {
            Index::BiDijkstra => OracleQuery::BiDijkstra {
                net,
                search: BiDijkstra::new(net.num_nodes()),
            },
            Index::Ch(ch) => OracleQuery::Ch(ChQuery::new(ch)),
            Index::Tnr(tnr) => OracleQuery::Tnr(tnr.query().with_network(net)),
            Index::Silc(s) => OracleQuery::Silc(s.query(net)),
            Index::Pcpd(p) => OracleQuery::Pcpd(p.query(net)),
        }
    }
}

/// A reusable query workspace for any technique.
///
/// Variants differ in size because each technique's workspace differs;
/// one is created per measurement session, never copied in a hot path.
#[allow(clippy::large_enum_variant)]
pub enum OracleQuery<'a> {
    /// Baseline workspace.
    BiDijkstra {
        /// The queried network.
        net: &'a RoadNetwork,
        /// The search state.
        search: BiDijkstra,
    },
    /// CH workspace.
    Ch(ChQuery<'a>),
    /// TNR workspace.
    Tnr(TnrQuery<'a>),
    /// SILC workspace.
    Silc(SilcQuery<'a>),
    /// PCPD workspace.
    Pcpd(PcpdQuery<'a>),
}

impl OracleQuery<'_> {
    /// Distance query (paper §2).
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        match self {
            OracleQuery::BiDijkstra { net, search } => search.distance(net, s, t),
            OracleQuery::Ch(q) => q.distance(s, t),
            OracleQuery::Tnr(q) => q.distance(s, t),
            OracleQuery::Silc(q) => q.distance(s, t),
            OracleQuery::Pcpd(q) => q.distance(s, t),
        }
    }

    /// Shortest-path query (paper §2).
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        match self {
            OracleQuery::BiDijkstra { net, search } => search.shortest_path(net, s, t),
            OracleQuery::Ch(q) => q.shortest_path(s, t),
            OracleQuery::Tnr(q) => q.shortest_path(s, t),
            OracleQuery::Silc(q) => q.shortest_path(s, t),
            OracleQuery::Pcpd(q) => q.shortest_path(s, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    #[test]
    fn all_techniques_agree_on_figure1() {
        let g = figure1();
        let mut reference = spq_dijkstra::Dijkstra::new(g.num_nodes());
        let indexes: Vec<(Index, Duration)> = Technique::ALL
            .iter()
            .map(|&t| Index::build(t, &g))
            .collect();
        for s in 0..8u32 {
            reference.run(&g, s);
            for t in 0..8u32 {
                let expect = reference.distance(t);
                for (index, _) in &indexes {
                    let mut q = index.query(&g);
                    assert_eq!(
                        q.distance(s, t),
                        expect,
                        "{} distance ({s},{t})",
                        index.technique().name()
                    );
                    let (d, path) = q.shortest_path(s, t).unwrap();
                    assert_eq!(Some(d), expect);
                    assert_eq!(g.path_length(&path), expect);
                }
            }
        }
    }

    #[test]
    fn technique_metadata() {
        assert_eq!(Technique::ALL.len(), 5);
        assert_eq!(Technique::Ch.name(), "CH");
        assert!(Technique::Silc.needs_all_pairs());
        assert!(Technique::Pcpd.needs_all_pairs());
        assert!(!Technique::Tnr.needs_all_pairs());
    }

    #[test]
    fn baseline_has_zero_index_size() {
        let g = figure1();
        let (idx, _) = Index::build(Technique::BiDijkstra, &g);
        assert_eq!(idx.size_bytes(), 0);
        let (idx, _) = Index::build(Technique::Ch, &g);
        assert!(idx.size_bytes() > 0);
    }
}
