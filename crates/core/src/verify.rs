//! Differential verification of the techniques against the baseline.
//!
//! The paper's credibility rests on all implementations answering
//! identically (it specifically calls out that a faulty TNR
//! implementation invalidated previously published results — §1). This
//! module packages the cross-checking logic the test-suite uses into a
//! public API, so deployments can audit an index (e.g. after
//! deserialising it from disk) before serving traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spq_dijkstra::Dijkstra;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;

use crate::oracle::Index;

/// One detected disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defect {
    /// The distance differs from the baseline's.
    WrongDistance {
        /// Query source.
        s: NodeId,
        /// Query target.
        t: NodeId,
        /// What the index answered.
        got: Option<u64>,
        /// The baseline's answer.
        expected: Option<u64>,
    },
    /// The returned path is not a valid edge sequence, or its length is
    /// not optimal.
    BadPath {
        /// Query source.
        s: NodeId,
        /// Query target.
        t: NodeId,
        /// Why the path was rejected.
        reason: String,
    },
}

/// Outcome of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Queries checked.
    pub checked: usize,
    /// Defects found (empty = the index is consistent with Dijkstra on
    /// the sampled workload).
    pub defects: Vec<Defect>,
}

impl VerifyReport {
    /// Whether no defect was found.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
    }
}

/// Checks `index` against the Dijkstra baseline on `samples` random
/// query pairs (both distance and shortest-path queries). Stops
/// collecting after 16 defects — one is already disqualifying.
pub fn verify_index(net: &RoadNetwork, index: &Index, samples: usize, seed: u64) -> VerifyReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reference = Dijkstra::new(net.num_nodes());
    let mut q = index.query(net);
    let n = net.num_nodes() as u64;
    let mut report = VerifyReport {
        checked: 0,
        defects: Vec::new(),
    };
    for _ in 0..samples {
        if report.defects.len() >= 16 {
            break;
        }
        let s = (rng.random::<u64>() % n) as NodeId;
        let t = (rng.random::<u64>() % n) as NodeId;
        report.checked += 1;
        reference.run_to_target(net, s, t);
        let expected = reference.distance(t);
        let got = q.distance(s, t);
        if got != expected {
            report.defects.push(Defect::WrongDistance {
                s,
                t,
                got,
                expected,
            });
            continue;
        }
        match q.shortest_path(s, t) {
            None => {
                if expected.is_some() {
                    report.defects.push(Defect::BadPath {
                        s,
                        t,
                        reason: "no path returned for a connected pair".into(),
                    });
                }
            }
            Some((d, path)) => {
                if Some(d) != expected {
                    report.defects.push(Defect::BadPath {
                        s,
                        t,
                        reason: format!("reported length {d}, expected {expected:?}"),
                    });
                } else if path.first().copied() != Some(s) || path.last().copied() != Some(t) {
                    report.defects.push(Defect::BadPath {
                        s,
                        t,
                        reason: "path endpoints do not match the query".into(),
                    });
                } else if net.path_length(&path) != expected {
                    report.defects.push(Defect::BadPath {
                        s,
                        t,
                        reason: "path is not a valid optimal edge sequence".into(),
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Technique;
    use spq_synth::SynthParams;

    #[test]
    fn clean_indexes_verify_clean() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(400, 77));
        for technique in Technique::ALL {
            let (index, _) = Index::build(technique, &net);
            let report = verify_index(&net, &index, 40, 1);
            assert!(
                report.is_clean(),
                "{}: {:?}",
                technique.name(),
                report.defects
            );
            assert_eq!(report.checked, 40);
        }
    }

    #[test]
    fn flawed_tnr_is_caught() {
        use spq_graph::{GraphBuilder, NodeId};
        use spq_tnr::{AccessNodeStrategy, Tnr, TnrParams};
        // A network with long bridge edges (the Appendix B hazard), so
        // the flawed access-node computation actually corrupts answers.
        let base = spq_synth::generate(&SynthParams::with_target_vertices(2_000, 78));
        let mut b = GraphBuilder::with_capacity(base.num_nodes(), base.num_edges() + 64);
        for v in 0..base.num_nodes() as NodeId {
            b.add_node(base.coord(v));
        }
        for v in 0..base.num_nodes() as NodeId {
            for (u, w) in base.neighbors(v) {
                if v < u {
                    b.add_edge(v, u, w);
                }
            }
        }
        let rect = base.bounding_rect();
        let span = rect.width().max(rect.height());
        let mut state = 0x600d_c0deu64;
        let mut added = 0;
        while added < 40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(23);
            let s = ((state >> 33) % base.num_nodes() as u64) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(23);
            let t = ((state >> 33) % base.num_nodes() as u64) as NodeId;
            let d = base.coord(s).linf(&base.coord(t)) as u64;
            if s != t && d > span * 3 / 64 && d < span * 6 / 64 {
                b.add_edge(s, t, (d / 8).max(1) as u32);
                added += 1;
            }
        }
        let net = b.build().unwrap();
        let flawed = Tnr::build(
            &net,
            &TnrParams {
                access: AccessNodeStrategy::FlawedBast,
                ..TnrParams::default()
            },
        );
        // The flawed index *with its CH fallback masked off* would be
        // wrong; through the public API the fallback can rescue local
        // queries, so probe the raw tables for at least one corruption.
        let mut q = flawed.query().with_network(&net);
        let mut reference = Dijkstra::new(net.num_nodes());
        let mut corrupted = false;
        let n = net.num_nodes() as u64;
        let mut state = 99u64;
        for _ in 0..4_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            let s = ((state >> 33) % n) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            let t = ((state >> 33) % n) as NodeId;
            if !flawed.distance_applicable(s, t) {
                continue;
            }
            reference.run_to_target(&net, s, t);
            if q.table_distance(s, t) != reference.distance(t).unwrap() {
                corrupted = true;
                break;
            }
        }
        assert!(
            corrupted,
            "expected the flawed access nodes to corrupt an answer"
        );
    }
}
