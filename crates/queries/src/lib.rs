//! Workload generation for the paper's experiments (§4.2 and App. E.2).
//!
//! Two families of query sets:
//!
//! * [`linf_query_sets`] — Q1..Q10: impose a 1024×1024 grid with cell
//!   side `l`; Qi holds random vertex pairs whose **L∞ distance** lies in
//!   `[2^(i-1)·l, 2^i·l)`. Used in §4.4–4.6.
//! * [`network_query_sets`] — R1..R10: estimate the maximum network
//!   distance `ld`; Ri holds random pairs whose **network distance**
//!   lies in `[2^(i-11)·ld, 2^(i-10)·ld)`. Used in Appendix E.2.

pub mod linf;
pub mod network;
pub mod shapes;
pub mod stats;

pub use linf::linf_query_sets;
pub use network::{estimate_max_distance, network_query_sets};

use spq_graph::types::NodeId;

/// A labelled set of query pairs.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// "Q1".."Q10" or "R1".."R10".
    pub label: String,
    /// The (source, destination) pairs.
    pub pairs: Vec<(NodeId, NodeId)>,
}

impl QuerySet {
    /// Whether the generator found any pair in this distance band.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Generation parameters shared by both families.
#[derive(Debug, Clone, Copy)]
pub struct QueryGenParams {
    /// Pairs per set (the paper uses 10,000).
    pub per_set: usize,
    /// Resolution of the grid defining `l` (the paper uses 1024).
    pub grid: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryGenParams {
    fn default() -> Self {
        QueryGenParams {
            per_set: 10_000,
            grid: 1024,
            seed: 0x9e37_79b9,
        }
    }
}
