//! Workload descriptive statistics.
//!
//! The experiment write-up wants to characterise each query set beyond
//! its defining band — e.g. the paper's discussion of Figures 10/11
//! hinges on k (the edge count of the answer path) growing with the set
//! index. This module measures those properties.

use spq_dijkstra::BiDijkstra;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;

use crate::QuerySet;

/// Summary statistics of one query set.
#[derive(Debug, Clone, PartialEq)]
pub struct SetStats {
    /// The set's label.
    pub label: String,
    /// Number of pairs.
    pub pairs: usize,
    /// Mean L∞ distance between endpoints.
    pub mean_linf: f64,
    /// Mean network distance.
    pub mean_dist: f64,
    /// Mean number of edges on the shortest path (the k of the paper's
    /// O(k log n) analyses).
    pub mean_path_edges: f64,
}

/// Computes statistics over (up to `sample`) pairs of each set.
pub fn describe(net: &RoadNetwork, sets: &[QuerySet], sample: usize) -> Vec<SetStats> {
    let mut bidi = BiDijkstra::new(net.num_nodes());
    sets.iter()
        .map(|set| {
            let pairs: Vec<(NodeId, NodeId)> = set.pairs.iter().copied().take(sample).collect();
            let mut linf = 0.0;
            let mut dist = 0.0;
            let mut edges = 0.0;
            for &(s, t) in &pairs {
                linf += net.coord(s).linf(&net.coord(t)) as f64;
                if let Some((d, path)) = bidi.shortest_path(net, s, t) {
                    dist += d as f64;
                    edges += (path.len().saturating_sub(1)) as f64;
                }
            }
            let m = pairs.len().max(1) as f64;
            SetStats {
                label: set.label.clone(),
                pairs: set.pairs.len(),
                mean_linf: linf / m,
                mean_dist: dist / m,
                mean_path_edges: edges / m,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{linf_query_sets, QueryGenParams};

    #[test]
    fn k_grows_with_the_set_index() {
        let net = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(2000, 3));
        let sets = linf_query_sets(
            &net,
            &QueryGenParams {
                per_set: 60,
                ..QueryGenParams::default()
            },
        );
        let stats = describe(&net, &sets, 40);
        // Among non-empty sets, the far bands must have longer paths
        // than the near bands: compare the first and last populated.
        let populated: Vec<&SetStats> = stats.iter().filter(|s| s.pairs > 0).collect();
        assert!(populated.len() >= 4);
        let first = populated.first().unwrap();
        let last = populated.last().unwrap();
        assert!(
            last.mean_path_edges > 2.0 * first.mean_path_edges,
            "k should grow: {} -> {}",
            first.mean_path_edges,
            last.mean_path_edges
        );
        assert!(last.mean_linf > first.mean_linf);
        assert!(last.mean_dist > first.mean_dist);
    }

    #[test]
    fn empty_sets_are_describable() {
        let net = spq_graph::toy::grid_graph(4, 4);
        let sets = vec![QuerySet {
            label: "empty".into(),
            pairs: vec![],
        }];
        let stats = describe(&net, &sets, 10);
        assert_eq!(stats[0].pairs, 0);
        assert_eq!(stats[0].mean_dist, 0.0);
    }
}
