//! Q1..Q10: query sets stratified by L∞ distance (paper §4.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spq_graph::grid::{GridFrame, VertexGrid};
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;

use crate::{QueryGenParams, QuerySet};

/// Generates the ten Q-sets. A set may come back with fewer than
/// `per_set` pairs (or none) if the network's vertex density cannot
/// realise the band — on very small or perfectly uniform networks the
/// nearest bands can be unfillable, which callers must tolerate.
pub fn linf_query_sets(net: &RoadNetwork, params: &QueryGenParams) -> Vec<QuerySet> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let frame = GridFrame::new(net.bounding_rect(), params.grid);
    let l = frame.side();
    // A moderate bucket grid for neighbourhood enumeration.
    let bucket_res = 64.min(params.grid);
    let buckets = VertexGrid::build(net, bucket_res);
    let n = net.num_nodes() as u64;

    let mut sets = Vec::with_capacity(10);
    for i in 1..=10u32 {
        let lo = l << (i - 1);
        let hi = l << i;
        let mut pairs = Vec::with_capacity(params.per_set);
        // Wide bands: rejection sampling over uniform pairs is cheap.
        // Narrow bands: enumerate a source's spatial neighbourhood.
        let extent = net
            .bounding_rect()
            .width()
            .max(net.bounding_rect().height());
        let wide = hi * 8 >= extent;
        let max_attempts = params.per_set * 60;
        let mut attempts = 0usize;
        while pairs.len() < params.per_set && attempts < max_attempts {
            attempts += 1;
            let s = (rng.random::<u64>() % n) as NodeId;
            if wide {
                let t = (rng.random::<u64>() % n) as NodeId;
                if s == t {
                    continue;
                }
                let d = net.coord(s).linf(&net.coord(t)) as u64;
                if d >= lo && d < hi {
                    pairs.push((s, t));
                }
            } else {
                // Enumerate cells within the annulus radius around s.
                let cell = buckets.cell_of(s);
                let radius = (hi / buckets.frame().side()).max(1) as u32 + 1;
                let ps = net.coord(s);
                let mut candidates: Vec<NodeId> = Vec::new();
                for t in buckets.vertices_within(cell, radius) {
                    if t == s {
                        continue;
                    }
                    let d = ps.linf(&net.coord(t)) as u64;
                    if d >= lo && d < hi {
                        candidates.push(t);
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let t = candidates[(rng.random::<u64>() % candidates.len() as u64) as usize];
                pairs.push((s, t));
            }
        }
        sets.push(QuerySet {
            label: format!("Q{i}"),
            pairs,
        });
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_synth::SynthParams;

    #[test]
    fn bands_are_respected() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(3000, 81));
        let params = QueryGenParams {
            per_set: 200,
            ..QueryGenParams::default()
        };
        let sets = linf_query_sets(&net, &params);
        assert_eq!(sets.len(), 10);
        let frame = GridFrame::new(net.bounding_rect(), params.grid);
        let l = frame.side();
        for (i, set) in sets.iter().enumerate() {
            let lo = l << i;
            let hi = l << (i + 1);
            for &(s, t) in &set.pairs {
                let d = net.coord(s).linf(&net.coord(t)) as u64;
                assert!(
                    d >= lo && d < hi,
                    "{}: pair ({s},{t}) has L∞ {d} outside [{lo},{hi})",
                    set.label
                );
            }
        }
    }

    #[test]
    fn middle_and_far_bands_fill_completely() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(3000, 82));
        let params = QueryGenParams {
            per_set: 100,
            ..QueryGenParams::default()
        };
        let sets = linf_query_sets(&net, &params);
        for set in &sets[4..9] {
            assert_eq!(set.pairs.len(), params.per_set, "{} incomplete", set.label);
        }
        // The urban cores must make at least the Q2 band non-empty.
        assert!(!sets[1].is_empty(), "Q2 empty");
    }

    #[test]
    fn deterministic_per_seed() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(1000, 83));
        let params = QueryGenParams {
            per_set: 50,
            ..QueryGenParams::default()
        };
        let a = linf_query_sets(&net, &params);
        let b = linf_query_sets(&net, &params);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pairs, y.pairs);
        }
    }

    #[test]
    fn labels_are_q1_to_q10() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(500, 84));
        let sets = linf_query_sets(
            &net,
            &QueryGenParams {
                per_set: 5,
                ..QueryGenParams::default()
            },
        );
        let labels: Vec<&str> = sets.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels[0], "Q1");
        assert_eq!(labels[9], "Q10");
    }
}
