//! Seeded workload *shapes* for the one-to-many query family.
//!
//! The PR-7 serving surface added one-to-many, kNN, and range queries;
//! driving them reproducibly needs more than (s, t) pairs — it needs
//! the *shapes*: which target sets a one-to-many batch asks for, which
//! `k` values a kNN sweep walks, which radii a range query uses. This
//! module generates all three from one seed and persists them in a
//! checksummed `SPQW` container, so the torture harness and the load
//! generator replay byte-identical workloads across processes and CI
//! runs instead of re-deriving "roughly similar" ones.
//!
//! Radii are calibrated against the network's actual distance profile
//! (percentiles of a sampled one-to-all Dijkstra) — a fixed absolute
//! radius would select everything on a small synthetic network and
//! nothing on a continental one.

use std::io::{Read, Write};

use rand::{rngs::StdRng, Rng, SeedableRng};
use spq_dijkstra::Dijkstra;
use spq_graph::binio::{
    self, read_u32s, read_u64, read_u64s, write_u32s, write_u64, write_u64s, IndexLoadError,
};
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

const MAGIC: &[u8; 4] = b"SPQW";
const VERSION: u32 = 1;

/// Knobs for [`generate_workload`].
#[derive(Debug, Clone, Copy)]
pub struct ShapeGenParams {
    /// RNG seed; equal seeds on equal networks yield byte-identical
    /// workload files.
    pub seed: u64,
    /// Number of one-to-many target sets.
    pub o2m_sets: usize,
    /// Targets per one-to-many set.
    pub o2m_targets: usize,
    /// Length of the kNN k-sweep.
    pub knn_ks: usize,
    /// Number of range radii.
    pub range_radii: usize,
}

impl Default for ShapeGenParams {
    fn default() -> Self {
        ShapeGenParams {
            seed: 0x0058_47E5,
            o2m_sets: 16,
            o2m_targets: 64,
            knn_ks: 8,
            range_radii: 8,
        }
    }
}

/// A persisted workload: the query shapes one seed produced on one
/// network. Loaded by the load generator (`--workload`) and the torture
/// harness so both replay exactly the same requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// The generating seed (recorded for provenance; reloading does not
    /// re-derive anything from it).
    pub seed: u64,
    /// One-to-many target sets, each a batch of distinct-ish vertices.
    pub o2m_sets: Vec<Vec<NodeId>>,
    /// kNN `k` sweep (sorted ascending, all ≥ 1).
    pub knn_ks: Vec<u32>,
    /// Range-query radii, drawn from the network's distance profile
    /// (sorted ascending).
    pub range_radii: Vec<Dist>,
}

impl Workload {
    /// Serialises into a checksummed `SPQW` container.
    pub fn write_binary(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut body = Vec::new();
        write_u64(&mut body, self.seed)?;
        write_u64(&mut body, self.o2m_sets.len() as u64)?;
        for set in &self.o2m_sets {
            write_u32s(&mut body, set)?;
        }
        write_u32s(&mut body, &self.knn_ks)?;
        write_u64s(&mut body, &self.range_radii)?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Reads and fully validates a `SPQW` container.
    pub fn read_binary(r: &mut impl Read) -> Result<Workload, IndexLoadError> {
        let body = binio::read_checksummed(r, MAGIC, VERSION)?;
        let mut r = body.as_slice();
        let seed = read_u64(&mut r)?;
        let n_sets = read_u64(&mut r)? as usize;
        if n_sets > 1 << 20 {
            return Err(IndexLoadError::Corrupt(format!(
                "implausible o2m set count {n_sets}"
            )));
        }
        let mut o2m_sets = Vec::with_capacity(n_sets);
        for _ in 0..n_sets {
            o2m_sets.push(read_u32s(&mut r)?);
        }
        let knn_ks = read_u32s(&mut r)?;
        let range_radii = read_u64s(&mut r)?;
        if !r.is_empty() {
            return Err(IndexLoadError::Corrupt(format!(
                "{} trailing byte(s) after workload body",
                r.len()
            )));
        }
        Ok(Workload {
            seed,
            o2m_sets,
            knn_ks,
            range_radii,
        })
    }

    /// Sanity bounds against a network: every target in range, every k
    /// ≥ 1. Returns the first violation. A workload generated on one
    /// network and replayed against a smaller one fails here instead of
    /// producing wire errors mid-run.
    pub fn validate(&self, net: &RoadNetwork) -> Result<(), String> {
        let n = net.num_nodes() as NodeId;
        for (i, set) in self.o2m_sets.iter().enumerate() {
            if set.is_empty() {
                return Err(format!("o2m set {i} is empty"));
            }
            if let Some(&v) = set.iter().find(|&&v| v >= n) {
                return Err(format!("o2m set {i} targets vertex {v} >= |V| = {n}"));
            }
        }
        if self.knn_ks.contains(&0) {
            return Err("kNN sweep contains k = 0".into());
        }
        Ok(())
    }
}

/// Generates the workload shapes for `net` from one seed.
pub fn generate_workload(net: &RoadNetwork, params: &ShapeGenParams) -> Workload {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = net.num_nodes() as NodeId;
    assert!(n > 0, "cannot generate a workload for an empty network");

    let o2m_sets: Vec<Vec<NodeId>> = (0..params.o2m_sets)
        .map(|_| {
            (0..params.o2m_targets.max(1))
                .map(|_| rng.random_range(0..n))
                .collect()
        })
        .collect();

    // k-sweep: geometric-ish spread from 1 toward a quarter of the
    // vertex count, deduplicated and sorted. Small networks simply get
    // a shorter sweep.
    let k_cap = (n / 4).clamp(1, 4096);
    let mut knn_ks: Vec<u32> = (0..params.knn_ks.max(1))
        .map(|i| (1u32 << i.min(12)).min(k_cap).max(1))
        .collect();
    knn_ks.sort_unstable();
    knn_ks.dedup();

    // Radii from the distance profile of a few sampled sources:
    // percentiles between the 5th and the 60th, so range answers stay
    // bounded but non-trivial.
    let mut profile: Vec<Dist> = Vec::new();
    let mut oracle = Dijkstra::new(net.num_nodes());
    for _ in 0..3 {
        let s = rng.random_range(0..n);
        oracle.run(net, s);
        profile.extend((0..n).filter_map(|v| oracle.distance(v)));
    }
    profile.sort_unstable();
    let mut range_radii: Vec<Dist> = (0..params.range_radii.max(1))
        .map(|i| {
            let frac = 0.05 + 0.55 * (i as f64 / params.range_radii.max(2) as f64);
            let idx = ((profile.len() as f64 * frac) as usize).min(profile.len().saturating_sub(1));
            profile.get(idx).copied().unwrap_or(0)
        })
        .collect();
    range_radii.sort_unstable();

    Workload {
        seed: params.seed,
        o2m_sets,
        knn_ks,
        range_radii,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_synth::SynthParams;

    fn net() -> RoadNetwork {
        spq_synth::generate(&SynthParams::with_target_vertices(96, 3))
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let net = net();
        let a = generate_workload(&net, &ShapeGenParams::default());
        let b = generate_workload(&net, &ShapeGenParams::default());
        assert_eq!(a, b);
        let c = generate_workload(
            &net,
            &ShapeGenParams {
                seed: 99,
                ..ShapeGenParams::default()
            },
        );
        assert_ne!(a, c, "different seeds must produce different shapes");
        assert!(a.validate(&net).is_ok());
    }

    #[test]
    fn roundtrips_through_the_container() {
        let net = net();
        let w = generate_workload(&net, &ShapeGenParams::default());
        let mut buf = Vec::new();
        w.write_binary(&mut buf).unwrap();
        let back = Workload::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(w, back);

        // Byte-identical across generations: the persistence layer is
        // what CI replays, so serialisation itself must be stable.
        let mut buf2 = Vec::new();
        generate_workload(&net, &ShapeGenParams::default())
            .write_binary(&mut buf2)
            .unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let net = net();
        let w = generate_workload(&net, &ShapeGenParams::default());
        let mut buf = Vec::new();
        w.write_binary(&mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        match Workload::read_binary(&mut buf.as_slice()) {
            Err(IndexLoadError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        buf[last] ^= 0x40;
        buf.truncate(buf.len() - 3);
        match Workload::read_binary(&mut buf.as_slice()) {
            Err(IndexLoadError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn shapes_respect_network_bounds() {
        let net = net();
        let w = generate_workload(&net, &ShapeGenParams::default());
        let n = net.num_nodes() as NodeId;
        assert!(w.o2m_sets.iter().flatten().all(|&v| v < n));
        assert!(w.knn_ks.windows(2).all(|p| p[0] < p[1]));
        assert!(w.knn_ks.iter().all(|&k| k >= 1));
        assert!(w.range_radii.windows(2).all(|p| p[0] <= p[1]));
        // A workload aimed at a bigger network fails validation here.
        let tiny = spq_synth::generate(&SynthParams::with_target_vertices(8, 2));
        assert!(w.validate(&tiny).is_err());
    }
}
