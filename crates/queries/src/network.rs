//! R1..R10: query sets stratified by network distance (paper App. E.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spq_dijkstra::Dijkstra;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

use crate::{QueryGenParams, QuerySet};

/// "A rough estimation of the maximum distance ld between any two
/// vertices" (App. E.2), via the classic double sweep: Dijkstra from an
/// arbitrary vertex, then from the farthest vertex found.
pub fn estimate_max_distance(net: &RoadNetwork, seed: u64) -> Dist {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = net.num_nodes() as u64;
    let start = (rng.random::<u64>() % n) as NodeId;
    let mut d = Dijkstra::new(net.num_nodes());
    d.run(net, start);
    let far = (0..net.num_nodes() as NodeId)
        .max_by_key(|&v| d.distance(v).unwrap_or(0))
        .expect("non-empty network");
    d.run(net, far);
    (0..net.num_nodes() as NodeId)
        .filter_map(|v| d.distance(v))
        .max()
        .unwrap_or(0)
}

/// Generates the ten R-sets: Ri holds pairs with network distance in
/// `[2^(i-11)·ld, 2^(i-10)·ld)`. One full Dijkstra per sampled source
/// fills all ten bands simultaneously.
pub fn network_query_sets(net: &RoadNetwork, params: &QueryGenParams) -> Vec<QuerySet> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ r_seed());
    let ld = estimate_max_distance(net, params.seed);
    let n = net.num_nodes() as u64;
    let mut d = Dijkstra::new(net.num_nodes());

    let mut pairs: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); 10];
    // Cap the number of source sweeps; each source contributes to every
    // band it can reach.
    let max_sources = 4 * params.per_set.div_ceil(50).max(8);
    let per_source = params.per_set.div_ceil(max_sources / 4).max(1);
    let mut scratch: Vec<Vec<NodeId>> = vec![Vec::new(); 10];
    for _ in 0..max_sources {
        if pairs.iter().all(|p| p.len() >= params.per_set) {
            break;
        }
        let s = (rng.random::<u64>() % n) as NodeId;
        d.run(net, s);
        for band in &mut scratch {
            band.clear();
        }
        for v in 0..net.num_nodes() as NodeId {
            if v == s {
                continue;
            }
            let Some(dist) = d.distance(v) else { continue };
            if dist == 0 {
                continue;
            }
            // dist in [2^(i-11) ld, 2^(i-10) ld) -> band index i-1.
            for i in 0..10u32 {
                let lo = ld >> (10 - i);
                let hi = ld >> (9 - i);
                if dist >= lo && dist < hi {
                    scratch[i as usize].push(v);
                    break;
                }
            }
        }
        for i in 0..10 {
            if pairs[i].len() >= params.per_set || scratch[i].is_empty() {
                continue;
            }
            for _ in 0..per_source.min(params.per_set - pairs[i].len()) {
                let t = scratch[i][(rng.random::<u64>() % scratch[i].len() as u64) as usize];
                pairs[i].push((s, t));
            }
        }
    }

    pairs
        .into_iter()
        .enumerate()
        .map(|(i, pairs)| QuerySet {
            label: format!("R{}", i + 1),
            pairs,
        })
        .collect()
}

/// Seed-mixing constant (distinct from the Q-set stream).
fn r_seed() -> u64 {
    0x52_53_45_54_53_00_00_01
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::BiDijkstra;
    use spq_synth::SynthParams;

    #[test]
    fn estimate_is_a_real_distance() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(800, 91));
        let ld = estimate_max_distance(&net, 7);
        assert!(ld > 0);
        // Double sweep is a lower bound on the true diameter but must be
        // at least half of it; sanity: no distance exceeds 2*ld.
        let mut d = Dijkstra::new(net.num_nodes());
        d.run(&net, 0);
        for v in 0..net.num_nodes() as NodeId {
            assert!(d.distance(v).unwrap() <= 2 * ld);
        }
    }

    #[test]
    fn bands_respect_network_distance() {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(1500, 92));
        let params = QueryGenParams {
            per_set: 60,
            ..QueryGenParams::default()
        };
        let ld = estimate_max_distance(&net, params.seed);
        let sets = network_query_sets(&net, &params);
        assert_eq!(sets.len(), 10);
        let mut bidi = BiDijkstra::new(net.num_nodes());
        for (i, set) in sets.iter().enumerate() {
            let lo = ld >> (10 - i);
            let hi = ld >> (9 - i);
            for &(s, t) in set.pairs.iter().take(10) {
                let dist = bidi.distance(&net, s, t).unwrap();
                assert!(
                    dist >= lo && dist < hi,
                    "{}: dist({s},{t}) = {dist} outside [{lo},{hi})",
                    set.label
                );
            }
        }
        // Large bands must fill on a connected network.
        assert!(!sets[8].is_empty());
        assert!(!sets[4].is_empty());
    }
}
