//! POI sets and the bucket-CH kNN index built over them.
//!
//! A **POI set** is a named, immutable list of vertices (restaurants,
//! chargers, depots) registered with the server ahead of queries. The
//! kNN engine is the classic bucket technique run *offline*: one upward
//! search per POI deposits `(poi, distance)` entries at every vertex of
//! its search space, stored as one flat CSR over ranks. A query is then
//! a single upward search from the source plus a merge of the buckets
//! it settles — `dist(s, p) = min over settled r of d↑(s, r) + d↑(p, r)`,
//! exact because every shortest path in a CH is up-down and the network
//! is undirected (the backward cone from a POI *is* its upward cone).
//!
//! Persistence stores only the set itself (`SPQP` container): buckets
//! depend on the serving hierarchy, so they are rebuilt at registration
//! time against whatever CH the epoch publishes — this is what makes a
//! registered set survive a hot index swap unchanged.

use std::io::{self, Read, Write};

use spq_ch::{ContractionHierarchy, SearchGraph};
use spq_graph::backend::QueryBudget;
use spq_graph::binio::{self, IndexLoadError};
use spq_graph::heap::IndexedHeap;
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::{par, RoadNetwork};

const MAGIC: &[u8; 4] = b"SPQP";
const VERSION: u32 = 1;

/// Longest accepted set name. Names appear in reload-spec lines and
/// STATS output, so they are kept short and shell-safe.
pub const MAX_POI_NAME: usize = 64;

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_POI_NAME
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

/// A named, validated set of POI vertices for one network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoiSet {
    name: String,
    /// Vertex count of the network the set was sampled from — a load
    /// against a different network is rejected instead of answering
    /// nonsense.
    net_nodes: u64,
    /// Sorted, deduplicated vertex ids.
    nodes: Vec<NodeId>,
}

impl PoiSet {
    /// Builds a set from raw vertices, sorting and deduplicating them.
    pub fn new(name: &str, net_nodes: usize, mut nodes: Vec<NodeId>) -> Result<PoiSet, String> {
        if !valid_name(name) {
            return Err(format!(
                "invalid POI set name {name:?}: 1..={MAX_POI_NAME} chars of [A-Za-z0-9_.-]"
            ));
        }
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.is_empty() {
            return Err(format!("POI set {name:?} is empty"));
        }
        if let Some(&v) = nodes.last() {
            if v as u64 >= net_nodes as u64 {
                return Err(format!(
                    "POI set {name:?} names vertex {v} but the network has {net_nodes} vertices"
                ));
            }
        }
        Ok(PoiSet {
            name: name.to_string(),
            net_nodes: net_nodes as u64,
            nodes,
        })
    }

    /// Deterministically samples `count` distinct vertices of `net`.
    pub fn sample(
        net: &RoadNetwork,
        name: &str,
        count: usize,
        seed: u64,
    ) -> Result<PoiSet, String> {
        let n = net.num_nodes();
        if count == 0 || count > n {
            return Err(format!(
                "cannot sample {count} POIs from a {n}-vertex network"
            ));
        }
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut nodes = Vec::with_capacity(count);
        while nodes.len() < count {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) % n as u64) as NodeId;
            if !nodes.contains(&v) {
                nodes.push(v);
            }
        }
        PoiSet::new(name, n, nodes)
    }

    /// The set's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The POI vertices, sorted ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of POIs in the set.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty (never true for a validated set).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rejects the set if it was sampled from a different network than
    /// the one about to serve it.
    pub fn validate_for(&self, net_nodes: usize) -> Result<(), String> {
        if self.net_nodes != net_nodes as u64 {
            return Err(format!(
                "POI set {:?} was built for a {}-vertex network, not {net_nodes}",
                self.name, self.net_nodes
            ));
        }
        Ok(())
    }

    /// Serialises the set inside a checksummed `SPQP` container.
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        binio::write_u8s(&mut body, self.name.as_bytes())?;
        binio::write_u64(&mut body, self.net_nodes)?;
        binio::write_u32s(&mut body, &self.nodes)?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Deserialises a set written by [`PoiSet::write_binary`], verifying
    /// the checksum and re-validating every structural invariant.
    pub fn read_binary(r: &mut impl Read) -> Result<PoiSet, IndexLoadError> {
        let (_, body) = binio::read_checksummed_versioned(r, MAGIC, VERSION, VERSION)?;
        let r = &mut &body[..];
        let name_bytes = binio::read_u8s(r)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| IndexLoadError::Corrupt("POI set name is not UTF-8".into()))?;
        let net_nodes = binio::read_u64(r)?;
        let nodes = binio::read_u32s(r)?;
        if usize::try_from(net_nodes).is_err() {
            return Err(IndexLoadError::Corrupt(
                "network size overflows usize".into(),
            ));
        }
        let set = PoiSet::new(&name, net_nodes as usize, nodes).map_err(IndexLoadError::Corrupt)?;
        Ok(set)
    }
}

/// The precomputed bucket index for one POI set over one hierarchy.
///
/// `bucket_first` is a CSR over ranks: the entries for rank `r` are
/// `bucket_poi/bucket_dist[bucket_first[r]..bucket_first[r + 1]]`, where
/// `bucket_poi[i]` indexes into the set's vertex list and
/// `bucket_dist[i]` is the upward distance from that POI to `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoiIndex {
    nodes: Vec<NodeId>,
    bucket_first: Vec<u32>,
    bucket_poi: Vec<u32>,
    bucket_dist: Vec<Dist>,
}

/// The upward-search scratch of the bucket build (same shape as the
/// many-to-many preprocessing workspace).
struct Upward {
    dist: Vec<Dist>,
    stamp: Vec<u32>,
    version: u32,
    heap: IndexedHeap,
    settled: Vec<(u32, Dist)>,
}

impl Upward {
    fn new(n: usize) -> Self {
        Upward {
            dist: vec![INFINITY; n],
            stamp: vec![0; n],
            version: 0,
            heap: IndexedHeap::new(n),
            settled: Vec::new(),
        }
    }

    fn run(&mut self, sg: &SearchGraph, root: u32) {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.heap.clear();
        self.settled.clear();
        self.dist[root as usize] = 0;
        self.stamp[root as usize] = version;
        self.heap.push_or_decrease(root, 0);
        while let Some((d, u)) = self.heap.pop_min() {
            self.settled.push((u, d));
            for e in sg.up(u) {
                let nd = d + e.weight as Dist;
                let hi = e.target as usize;
                if self.stamp[hi] != version || nd < self.dist[hi] {
                    self.dist[hi] = nd;
                    self.stamp[hi] = version;
                    self.heap.push_or_decrease(e.target, nd);
                }
            }
        }
    }
}

impl PoiIndex {
    /// Builds the bucket index for `set` over `ch`. The upward searches
    /// fan out across the preprocessing worker pool; the deposit order
    /// is fixed by POI index, so the result is byte-identical at any
    /// thread count.
    pub fn build(ch: &ContractionHierarchy, set: &PoiSet) -> Result<PoiIndex, String> {
        let sg = ch.search_graph();
        let n = sg.num_nodes();
        set.validate_for(n)?;
        let settled: Vec<Vec<(u32, Dist)>> = par::par_map(
            set.nodes(),
            || Upward::new(n),
            |ws, &p| {
                ws.run(sg, sg.rank_of(p));
                ws.settled.clone()
            },
        );
        let mut counts = vec![0u32; n + 1];
        for per_poi in &settled {
            for &(r, _) in per_poi {
                counts[r as usize + 1] += 1;
            }
        }
        let mut bucket_first = counts;
        for i in 1..bucket_first.len() {
            bucket_first[i] += bucket_first[i - 1];
        }
        let total = *bucket_first.last().unwrap() as usize;
        let mut cursor: Vec<u32> = bucket_first[..n].to_vec();
        let mut bucket_poi = vec![0u32; total];
        let mut bucket_dist = vec![0 as Dist; total];
        for (j, per_poi) in settled.iter().enumerate() {
            for &(r, d) in per_poi {
                let at = cursor[r as usize] as usize;
                bucket_poi[at] = j as u32;
                bucket_dist[at] = d;
                cursor[r as usize] += 1;
            }
        }
        Ok(PoiIndex {
            nodes: set.nodes().to_vec(),
            bucket_first,
            bucket_poi,
            bucket_dist,
        })
    }

    /// The POI vertices the index answers for.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Total bucket entries (index-size accounting).
    pub fn num_bucket_entries(&self) -> usize {
        self.bucket_poi.len()
    }

    /// k nearest POIs from `s`: up to `k` `(poi_vertex, distance)` pairs
    /// ascending by `(distance, vertex id)`. Returns `false` (with `out`
    /// cleared) if the budget tripped mid-query.
    pub fn knn(
        &self,
        sg: &SearchGraph,
        ws: &mut KnnWorkspace,
        s: NodeId,
        k: usize,
        out: &mut Vec<(NodeId, Dist)>,
    ) -> bool {
        out.clear();
        if k == 0 {
            return true;
        }
        ws.ensure(sg.num_nodes(), self.nodes.len());
        ws.budget.reset();
        ws.version = ws.version.wrapping_add(1);
        if ws.version == 0 {
            ws.stamp.fill(0);
            ws.best_stamp.fill(0);
            ws.version = 1;
        }
        let version = ws.version;
        ws.heap.clear();
        ws.touched.clear();
        let root = sg.rank_of(s);
        ws.dist[root as usize] = 0;
        ws.stamp[root as usize] = version;
        ws.heap.push_or_decrease(root, 0);
        while let Some((d, u)) = ws.heap.pop_min() {
            if !ws.budget.charge() {
                return false;
            }
            // Merge this vertex's bucket: each entry closes an up-down
            // path s ↑ u ↓ poi.
            let lo = self.bucket_first[u as usize] as usize;
            let hi = self.bucket_first[u as usize + 1] as usize;
            for i in lo..hi {
                let j = self.bucket_poi[i] as usize;
                let total = d + self.bucket_dist[i];
                if ws.best_stamp[j] != version {
                    ws.best_stamp[j] = version;
                    ws.best[j] = total;
                    ws.touched.push(j as u32);
                } else if total < ws.best[j] {
                    ws.best[j] = total;
                }
            }
            for e in sg.up(u) {
                let nd = d + e.weight as Dist;
                let ti = e.target as usize;
                if ws.stamp[ti] != version || nd < ws.dist[ti] {
                    ws.dist[ti] = nd;
                    ws.stamp[ti] = version;
                    ws.heap.push_or_decrease(e.target, nd);
                }
            }
        }
        out.extend(
            ws.touched
                .iter()
                .map(|&j| (self.nodes[j as usize], ws.best[j as usize])),
        );
        out.sort_unstable_by_key(|&(p, d)| (d, p));
        out.truncate(k);
        true
    }
}

/// Reusable per-thread scratch for bucket kNN queries: the upward
/// search state plus a best-distance slot per POI. Lazily sized, so a
/// worker that never serves kNN never allocates it.
#[derive(Debug)]
pub struct KnnWorkspace {
    dist: Vec<Dist>,
    stamp: Vec<u32>,
    version: u32,
    heap: IndexedHeap,
    best: Vec<Dist>,
    best_stamp: Vec<u32>,
    touched: Vec<u32>,
    budget: QueryBudget,
}

impl Default for KnnWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl KnnWorkspace {
    /// Creates an empty workspace; arrays appear on first use.
    pub fn new() -> Self {
        KnnWorkspace {
            dist: Vec::new(),
            stamp: Vec::new(),
            version: 0,
            heap: IndexedHeap::new(0),
            best: Vec::new(),
            best_stamp: Vec::new(),
            touched: Vec::new(),
            budget: QueryBudget::unlimited(),
        }
    }

    fn ensure(&mut self, n: usize, m: usize) {
        if self.dist.len() < n {
            self.dist = vec![INFINITY; n];
            self.stamp = vec![0; n];
            self.heap = IndexedHeap::new(n);
            self.version = 0;
        }
        if self.best.len() < m {
            self.best = vec![INFINITY; m];
            self.best_stamp = vec![0; m];
        }
    }

    /// Installs the cancellation budget subsequent queries run under.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether the most recent query was cut short by its budget.
    pub fn interrupted(&self) -> bool {
        self.budget.exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};

    fn brute_knn(
        g: &RoadNetwork,
        d: &mut Dijkstra,
        s: NodeId,
        k: usize,
        pois: &[NodeId],
    ) -> Vec<(NodeId, Dist)> {
        d.run(g, s);
        let mut all: Vec<(NodeId, Dist)> = pois
            .iter()
            .filter_map(|&p| d.distance(p).map(|x| (p, x)))
            .collect();
        all.sort_unstable_by_key(|&(p, x)| (x, p));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let g = grid_graph(9, 9);
        let ch = ContractionHierarchy::build(&g);
        let set = PoiSet::new("poi", g.num_nodes(), vec![0, 8, 40, 72, 80, 13]).unwrap();
        let idx = PoiIndex::build(&ch, &set).unwrap();
        let mut ws = KnnWorkspace::new();
        let mut d = Dijkstra::new(g.num_nodes());
        for s in 0..g.num_nodes() as NodeId {
            for k in [1usize, 3, 6, 10] {
                let mut got = Vec::new();
                assert!(idx.knn(ch.search_graph(), &mut ws, s, k, &mut got));
                assert_eq!(got, brute_knn(&g, &mut d, s, k, set.nodes()), "s={s} k={k}");
            }
        }
    }

    #[test]
    fn knn_workspace_survives_different_sets() {
        let g = grid_graph(6, 6);
        let ch = ContractionHierarchy::build(&g);
        let small = PoiSet::new("small", 36, vec![0, 35]).unwrap();
        let big = PoiSet::new("big", 36, (0..36).step_by(3).collect()).unwrap();
        let small_idx = PoiIndex::build(&ch, &small).unwrap();
        let big_idx = PoiIndex::build(&ch, &big).unwrap();
        let mut ws = KnnWorkspace::new();
        let mut d = Dijkstra::new(36);
        for s in [0u32, 17, 35] {
            let mut got = Vec::new();
            assert!(small_idx.knn(ch.search_graph(), &mut ws, s, 2, &mut got));
            assert_eq!(got, brute_knn(&g, &mut d, s, 2, small.nodes()));
            assert!(big_idx.knn(ch.search_graph(), &mut ws, s, 5, &mut got));
            assert_eq!(got, brute_knn(&g, &mut d, s, 5, big.nodes()));
        }
    }

    #[test]
    fn knn_budget_interrupts() {
        let g = grid_graph(8, 8);
        let ch = ContractionHierarchy::build(&g);
        let set = PoiSet::new("p", 64, vec![0, 63]).unwrap();
        let idx = PoiIndex::build(&ch, &set).unwrap();
        let mut ws = KnnWorkspace::new();
        ws.set_budget(QueryBudget::unlimited().with_node_cap(1));
        let mut out = vec![(1u32, 1u64)];
        assert!(!idx.knn(ch.search_graph(), &mut ws, 30, 2, &mut out));
        assert!(ws.interrupted());
        assert!(out.is_empty(), "interrupted query must not leak results");
    }

    #[test]
    fn build_is_deterministic_across_threads() {
        let g = grid_graph(7, 7);
        let ch = ContractionHierarchy::build(&g);
        let set = PoiSet::new("p", 49, (0..49).step_by(4).collect()).unwrap();
        let one = par::with_threads(1, || PoiIndex::build(&ch, &set).unwrap());
        let four = par::with_threads(4, || PoiIndex::build(&ch, &set).unwrap());
        assert_eq!(one, four);
    }

    #[test]
    fn set_validation_rejects_bad_inputs() {
        assert!(PoiSet::new("", 10, vec![0]).is_err());
        assert!(PoiSet::new("has space", 10, vec![0]).is_err());
        assert!(PoiSet::new("x", 10, vec![]).is_err());
        assert!(PoiSet::new("x", 10, vec![10]).is_err(), "id out of range");
        let set = PoiSet::new("x", 10, vec![3, 1, 3, 2]).unwrap();
        assert_eq!(set.nodes(), &[1, 2, 3], "sorted and deduplicated");
        assert!(set.validate_for(10).is_ok());
        assert!(set.validate_for(11).is_err());
    }

    #[test]
    fn sample_is_deterministic_and_distinct() {
        let g = figure1();
        let a = PoiSet::sample(&g, "s", 5, 42).unwrap();
        let b = PoiSet::sample(&g, "s", 5, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(PoiSet::sample(&g, "s", 9, 42).is_err(), "more than n");
        let c = PoiSet::sample(&g, "s", 5, 43).unwrap();
        assert_ne!(a.nodes(), c.nodes(), "different seed, different sample");
    }

    #[test]
    fn container_roundtrip_and_rejection() {
        let g = grid_graph(5, 5);
        let set = PoiSet::sample(&g, "chargers", 7, 9).unwrap();
        let mut buf = Vec::new();
        set.write_binary(&mut buf).unwrap();
        let back = PoiSet::read_binary(&mut &buf[..]).unwrap();
        assert_eq!(back, set);
        let mut buf2 = Vec::new();
        back.write_binary(&mut buf2).unwrap();
        assert_eq!(buf2, buf, "write → read → write is byte-stable");

        let mut bad_magic = buf.clone();
        bad_magic[1] ^= 0xff;
        assert!(matches!(
            PoiSet::read_binary(&mut &bad_magic[..]),
            Err(IndexLoadError::BadMagic { .. })
        ));
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x08;
        assert!(matches!(
            PoiSet::read_binary(&mut &flipped[..]),
            Err(IndexLoadError::ChecksumMismatch { .. })
        ));
        let mut truncated = buf.clone();
        truncated.truncate(truncated.len() - 5);
        assert!(matches!(
            PoiSet::read_binary(&mut &truncated[..]),
            Err(IndexLoadError::Truncated { .. })
        ));
    }
}
