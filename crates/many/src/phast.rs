//! PHAST-style one-to-many distances over the flat CH search graph.
//!
//! A point-to-point CH query explores two tiny upward cones; answering
//! `dist(s, t)` for *many* targets that way repeats the forward cone and
//! pays a heap-ordered backward cone per target. The PHAST observation
//! (Delling et al.) is that after one upward Dijkstra from `s`, the
//! downward half needs no priority queue at all: scanning vertices in
//! **descending rank order** and relaxing each vertex's upward edges
//! *backwards* (`dist[r] = min(dist[r], dist[head] + w)`) visits every
//! edge once, in the exact layout order the flat search graph stores
//! them — a branch-light linear sweep instead of n heap operations.
//!
//! The sweep is correct because every shortest path in a CH is up-down:
//! its apex is settled exactly by the upward search, and each vertex on
//! the downward leg is reached from a strictly higher rank, which the
//! descending scan has already finalised. On an undirected network the
//! upward adjacency is its own transpose (the up-edge `r → head` *is*
//! the down-edge `head → r`), so one CSR half serves both phases.
//!
//! The same sweep with a distance cutoff answers network range queries
//! ("every vertex within `d` of `s`"): values above the cutoff are
//! clamped back to [`INFINITY`] as the scan passes them, which both
//! prunes their descendants and makes collection a filter.

use spq_ch::{ContractionHierarchy, SearchGraph};
use spq_graph::backend::QueryBudget;
use spq_graph::heap::IndexedHeap;
use spq_graph::types::{Dist, NodeId, INFINITY};

/// A reusable one-to-many / range workspace bound to one hierarchy.
///
/// Like `ChQuery`, construction allocates nothing; the n-sized distance
/// lane appears on the first run and is reused (refilled, never
/// reallocated) afterwards. One workspace per worker thread.
#[derive(Debug)]
pub struct OneToMany<'a> {
    sg: &'a SearchGraph,
    /// Rank-indexed distance lane; `INFINITY` = unreached.
    dist: Vec<Dist>,
    heap: IndexedHeap,
    budget: QueryBudget,
    /// Source of the most recent *completed* full run (`run`); `None`
    /// after an interrupted or range run, so stale lanes can never be
    /// read as answers.
    source: Option<NodeId>,
}

impl<'a> OneToMany<'a> {
    /// Creates a workspace over `ch`'s search graph. Allocation is
    /// deferred to the first run.
    pub fn new(ch: &'a ContractionHierarchy) -> Self {
        Self::over(ch.search_graph())
    }

    /// Creates a workspace directly over a search graph.
    pub fn over(sg: &'a SearchGraph) -> Self {
        OneToMany {
            sg,
            dist: Vec::new(),
            heap: IndexedHeap::new(0),
            budget: QueryBudget::unlimited(),
            source: None,
        }
    }

    /// Installs the cancellation budget subsequent runs execute under:
    /// one charge per settled vertex in the upward phase, one per rank
    /// in the sweep.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether the most recent run was cut short by its budget (its
    /// results were discarded, not partially exposed).
    pub fn interrupted(&self) -> bool {
        self.budget.exhausted()
    }

    fn ensure(&mut self) {
        let n = self.sg.num_nodes();
        if self.dist.len() < n {
            self.dist = vec![INFINITY; n];
            self.heap = IndexedHeap::new(n);
        }
    }

    /// Phase 1: plain upward Dijkstra from `root` (a rank). The lane
    /// doubles as the tentative-distance array — it was just refilled
    /// with `INFINITY`, so no stamp array is needed. Settles at most the
    /// upward search space; stops early once the frontier passes
    /// `limit`.
    fn upward(&mut self, root: u32, limit: Dist) -> bool {
        self.heap.clear();
        self.dist[root as usize] = 0;
        self.heap.push_or_decrease(root, 0);
        while let Some((d, u)) = self.heap.pop_min() {
            if d > limit {
                break;
            }
            if !self.budget.charge() {
                return false;
            }
            for e in self.sg.up(u) {
                let nd = d + e.weight as Dist;
                let hi = e.target as usize;
                if nd < self.dist[hi] {
                    self.dist[hi] = nd;
                    self.heap.push_or_decrease(e.target, nd);
                }
            }
        }
        true
    }

    /// Phase 2: the rank-descending linear sweep. Each vertex takes the
    /// minimum of its tentative label and `dist[head] + w` over its
    /// upward edges — every head outranks it, so heads are already
    /// final. Values above `limit` are clamped to `INFINITY`.
    fn sweep(&mut self, limit: Dist) -> bool {
        for r in (0..self.sg.num_nodes() as u32).rev() {
            if !self.budget.charge() {
                return false;
            }
            let mut d = self.dist[r as usize];
            for e in self.sg.up(r) {
                let cand = self.dist[e.target as usize] + e.weight as Dist;
                if cand < d {
                    d = cand;
                }
            }
            self.dist[r as usize] = if d > limit { INFINITY } else { d };
        }
        true
    }

    /// Computes `dist(s, v)` for *every* vertex `v`. Returns `false`
    /// (and invalidates the lane) if the budget tripped. On success the
    /// answers are read through [`OneToMany::distance`] /
    /// [`OneToMany::distances_into`].
    pub fn run(&mut self, s: NodeId) -> bool {
        self.ensure();
        self.budget.reset();
        self.source = None;
        self.dist.fill(INFINITY);
        let root = self.sg.rank_of(s);
        if !self.upward(root, INFINITY) || !self.sweep(INFINITY) {
            return false;
        }
        self.source = Some(s);
        true
    }

    /// Source of the most recent completed [`OneToMany::run`].
    pub fn source(&self) -> Option<NodeId> {
        self.source
    }

    /// Distance to `t` from the last run's source (`None` =
    /// unreachable). Panics if no run has completed.
    #[inline]
    pub fn distance(&self, t: NodeId) -> Option<Dist> {
        assert!(self.source.is_some(), "no completed one-to-many run");
        let d = self.dist[self.sg.rank_of(t) as usize];
        if d >= INFINITY {
            None
        } else {
            Some(d)
        }
    }

    /// Fills `out[j]` with the distance to `targets[j]` from the last
    /// run's source.
    pub fn distances_into(&self, targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        assert!(self.source.is_some(), "no completed one-to-many run");
        out.clear();
        out.reserve(targets.len());
        for &t in targets {
            let d = self.dist[self.sg.rank_of(t) as usize];
            out.push(if d >= INFINITY { None } else { Some(d) });
        }
    }

    /// Network range query: fills `out` with every `(vertex, distance)`
    /// within `limit` of `s`, ascending by vertex id. Returns `false`
    /// (with `out` cleared) if the budget tripped.
    ///
    /// Both phases prune at `limit`: the upward search stops once its
    /// frontier passes it (any up-down path through a farther apex is
    /// longer still), and the sweep clamps out-of-range values so their
    /// descendants relax against `INFINITY`.
    pub fn range(&mut self, s: NodeId, limit: Dist, out: &mut Vec<(NodeId, Dist)>) -> bool {
        self.ensure();
        self.budget.reset();
        self.source = None;
        out.clear();
        self.dist.fill(INFINITY);
        let root = self.sg.rank_of(s);
        if !self.upward(root, limit) || !self.sweep(limit) {
            return false;
        }
        for r in 0..self.sg.num_nodes() as u32 {
            let d = self.dist[r as usize];
            if d <= limit {
                out.push((self.sg.orig_of(r), d));
            }
        }
        out.sort_unstable_by_key(|&(v, _)| v);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};
    use spq_graph::RoadNetwork;

    fn check_all_sources(g: &RoadNetwork) {
        let ch = ContractionHierarchy::build(g);
        let mut o2m = OneToMany::new(&ch);
        let mut d = Dijkstra::new(g.num_nodes());
        for s in 0..g.num_nodes() as NodeId {
            assert!(o2m.run(s));
            d.run(g, s);
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(o2m.distance(t), d.distance(t), "({s},{t})");
            }
        }
    }

    #[test]
    fn figure1_all_sources_exact() {
        check_all_sources(&figure1());
    }

    #[test]
    fn grid_all_sources_exact() {
        check_all_sources(&grid_graph(9, 7));
    }

    #[test]
    fn synthetic_network_exact() {
        let g = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(700, 5));
        let ch = ContractionHierarchy::build(&g);
        let mut o2m = OneToMany::new(&ch);
        let mut d = Dijkstra::new(g.num_nodes());
        for s in [0u32, 13, 311, (g.num_nodes() - 1) as u32] {
            assert!(o2m.run(s));
            d.run(&g, s);
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(o2m.distance(t), d.distance(t), "({s},{t})");
            }
        }
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let g = grid_graph(6, 6);
        let ch = ContractionHierarchy::build(&g);
        let mut o2m = OneToMany::new(&ch);
        assert_eq!(o2m.dist.len(), 0, "construction must not allocate");
        assert!(o2m.run(0));
        let first: Vec<_> = (0..36).map(|t| o2m.distance(t)).collect();
        assert!(o2m.run(35));
        assert!(o2m.run(0)); // stale lane from run(35) must not leak
        let again: Vec<_> = (0..36).map(|t| o2m.distance(t)).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn distances_into_matches_distance() {
        let g = grid_graph(5, 8);
        let ch = ContractionHierarchy::build(&g);
        let mut o2m = OneToMany::new(&ch);
        assert!(o2m.run(3));
        let targets = [0u32, 39, 17, 3, 17];
        let mut out = Vec::new();
        o2m.distances_into(&targets, &mut out);
        for (j, &t) in targets.iter().enumerate() {
            assert_eq!(out[j], o2m.distance(t));
        }
        assert_eq!(out[3], Some(0), "self distance");
    }

    #[test]
    fn range_matches_truncated_dijkstra() {
        let g = grid_graph(8, 8);
        let ch = ContractionHierarchy::build(&g);
        let mut o2m = OneToMany::new(&ch);
        let mut d = Dijkstra::new(g.num_nodes());
        for (s, limit) in [(0u32, 0u64), (0, 3), (27, 5), (63, 1_000_000)] {
            let mut got = Vec::new();
            assert!(o2m.range(s, limit, &mut got));
            d.run(&g, s);
            let expect: Vec<(NodeId, Dist)> = (0..g.num_nodes() as NodeId)
                .filter_map(|v| d.distance(v).filter(|&x| x <= limit).map(|x| (v, x)))
                .collect();
            assert_eq!(got, expect, "source {s} limit {limit}");
        }
    }

    #[test]
    fn budget_interrupts_and_recovers() {
        let g = grid_graph(10, 10);
        let ch = ContractionHierarchy::build(&g);
        let mut o2m = OneToMany::new(&ch);
        o2m.set_budget(QueryBudget::unlimited().with_node_cap(5));
        assert!(!o2m.run(0), "5 charges cannot cover a 100-rank sweep");
        assert!(o2m.interrupted());
        assert_eq!(o2m.source(), None);
        let mut out = Vec::new();
        assert!(!o2m.range(0, 50, &mut out));
        assert!(out.is_empty());
        // A fresh (unlimited) budget restores full service.
        o2m.set_budget(QueryBudget::unlimited());
        assert!(o2m.run(0));
        assert!(!o2m.interrupted());
        assert_eq!(o2m.distance(0), Some(0));
    }
}
