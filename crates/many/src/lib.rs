//! Batched query shapes over the flat CH search graph — the repo's
//! ninth subsystem, extending point-to-point serving with the three
//! shapes real road-network traffic is dominated by:
//!
//! * [`OneToMany`] — a PHAST-style one-to-many kernel: one upward
//!   Dijkstra from the source, then a single rank-descending linear
//!   sweep of the search graph that finalises every vertex's distance.
//!   Answers `dist(s, ·)` for arbitrary target sets orders of magnitude
//!   faster than repeated point queries once the set is non-trivial.
//! * [`PoiIndex`] — bucket-CH k-nearest-neighbour over a registered
//!   [`PoiSet`]: per-vertex buckets precomputed from each POI's upward
//!   search space make a kNN query one upward search plus bucket
//!   merges.
//! * Network range ("all vertices within `d` of `s`") — an
//!   early-terminated variant of the sweep ([`OneToMany::range`]).
//!
//! [`ManyBackend`] packages all of it behind the serving `Backend` /
//! `Session` traits so the TCP server, loadgen, and bench harness drive
//! the new shapes through the same budget/deadline/epoch machinery as
//! the original ops.
//!
//! # Example
//!
//! ```
//! use spq_ch::ContractionHierarchy;
//! use spq_graph::toy::figure1;
//! use spq_many::OneToMany;
//!
//! let g = figure1();
//! let ch = ContractionHierarchy::build(&g);
//! let mut o2m = OneToMany::new(&ch);
//! assert!(o2m.run(2)); // one sweep answers every target
//! assert_eq!(o2m.distance(6), Some(6)); // dist(v3, v7), paper §3.2
//! assert_eq!(o2m.distance(2), Some(0));
//! ```

pub mod backend;
pub mod phast;
pub mod poi;

pub use backend::{ManyBackend, ManySession, PoiEntry, PoiTable, O2M_SWEEP_CUTOFF};
pub use phast::OneToMany;
pub use poi::{KnnWorkspace, PoiIndex, PoiSet, MAX_POI_NAME};
