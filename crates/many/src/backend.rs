//! The serving face of the batched-query engines: a [`Backend`] that
//! wraps a shared contraction hierarchy and answers every [`Session`]
//! capability natively — point-to-point through `ChQuery`, dense
//! batches through the bucket many-to-many, one-to-many through the
//! PHAST sweep, kNN through registered POI buckets, and range through
//! the truncated sweep.
//!
//! The hierarchy is held behind an `Arc` so the serving engine can keep
//! one copy visible to this backend, the bench harness, and POI-index
//! builds alike. POI sets live in a [`PoiTable`] that is installed
//! exactly once per epoch (after the hierarchy exists, before the first
//! query) — sessions see either the full table or, before
//! installation, an empty one; they never see it change.

use std::sync::{Arc, OnceLock};

use spq_ch::{BatchDistances, ChQuery, ContractionHierarchy};
use spq_graph::backend::{Backend, PoiRef, QueryBudget, Session};
use spq_graph::types::{Dist, NodeId, INFINITY};
use spq_graph::RoadNetwork;

use crate::phast::OneToMany;
use crate::poi::{KnnWorkspace, PoiIndex, PoiSet};

/// Below this many targets a loop of point-to-point CH queries beats
/// the O(n + m) sweep; at and above it the sweep wins on every network
/// in the bench registry (the CI gate holds the line at exactly this
/// boundary).
pub const O2M_SWEEP_CUTOFF: usize = 64;

/// One registered POI set plus its bucket index over the serving
/// hierarchy.
#[derive(Debug)]
pub struct PoiEntry {
    /// The set as registered (persisted form).
    pub set: PoiSet,
    /// Buckets over the epoch's hierarchy.
    pub index: PoiIndex,
}

/// The epoch-scoped registry of POI sets, installed once after the
/// engine's hierarchy is built and immutable from then on.
#[derive(Debug, Default)]
pub struct PoiTable {
    entries: OnceLock<Vec<PoiEntry>>,
}

impl PoiTable {
    /// An empty, not-yet-installed table.
    pub fn empty() -> Arc<PoiTable> {
        Arc::new(PoiTable::default())
    }

    /// Installs the entries. A table can be installed only once — a
    /// second install is a bug in epoch construction and is reported,
    /// not silently ignored.
    pub fn install(&self, entries: Vec<PoiEntry>) -> Result<(), String> {
        self.entries
            .set(entries)
            .map_err(|_| "POI table already installed for this epoch".to_string())
    }

    /// Looks a set up by name.
    pub fn get(&self, name: &str) -> Option<&PoiEntry> {
        self.entries().iter().find(|e| e.set.name() == name)
    }

    /// All registered entries (empty before installation).
    pub fn entries(&self) -> &[PoiEntry] {
        self.entries.get().map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The CH-backed backend serving all five query shapes.
pub struct ManyBackend {
    ch: Arc<ContractionHierarchy>,
    pois: Arc<PoiTable>,
}

impl ManyBackend {
    /// Wraps a shared hierarchy and the epoch's POI table.
    pub fn new(ch: Arc<ContractionHierarchy>, pois: Arc<PoiTable>) -> Self {
        ManyBackend { ch, pois }
    }

    /// The wrapped hierarchy.
    pub fn hierarchy(&self) -> &Arc<ContractionHierarchy> {
        &self.ch
    }
}

impl Backend for ManyBackend {
    fn backend_name(&self) -> &'static str {
        // Serves the same index and answers as the plain CH backend; the
        // batched engines are capability extensions, not a new backend.
        "CH"
    }

    fn session<'a>(&'a self, _net: &'a RoadNetwork) -> Box<dyn Session + 'a> {
        Box::new(ManySession {
            ch: &self.ch,
            pois: &self.pois,
            query: ChQuery::new(&self.ch),
            batch: None,
            o2m: None,
            knn_ws: KnnWorkspace::new(),
            budget: QueryBudget::unlimited(),
        })
    }
}

/// Per-thread workspace bundle. Every engine is created lazily, so a
/// worker only pays for the query shapes it actually serves.
pub struct ManySession<'a> {
    ch: &'a ContractionHierarchy,
    pois: &'a PoiTable,
    query: ChQuery<'a>,
    batch: Option<BatchDistances<'a>>,
    o2m: Option<OneToMany<'a>>,
    knn_ws: KnnWorkspace,
    budget: QueryBudget,
}

impl<'a> ManySession<'a> {
    fn o2m(&mut self) -> &mut OneToMany<'a> {
        let ch = self.ch;
        let budget = &self.budget;
        self.o2m.get_or_insert_with(|| {
            let mut engine = OneToMany::new(ch);
            engine.set_budget(budget.clone());
            engine
        })
    }
}

impl Session for ManySession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.query.distance(s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.query.shortest_path(s, t)
    }

    /// Dense batches ride the multi-source SoA batch kernel; single-row
    /// batches wide enough for the sweep ride the one-to-many kernel;
    /// everything else loops point-to-point (same routing the plain CH
    /// backend has, plus the sweep fast path).
    fn distances(&mut self, sources: &[NodeId], targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        if sources.len() == 1 && targets.len() >= O2M_SWEEP_CUTOFF {
            self.one_to_many(sources[0], targets, out);
            return;
        }
        if sources.len() < 2 || targets.len() < 2 {
            out.clear();
            out.extend(
                sources
                    .iter()
                    .flat_map(|&s| targets.iter().map(move |&t| (s, t)))
                    .map(|(s, t)| self.query.distance(s, t)),
            );
            return;
        }
        let batch = self
            .batch
            .get_or_insert_with(|| BatchDistances::new(self.ch));
        batch.set_budget(self.budget.clone());
        out.clear();
        match batch.table(sources, targets) {
            Some(table) => {
                out.extend(
                    table
                        .into_iter()
                        .map(|d| if d >= INFINITY { None } else { Some(d) }),
                )
            }
            // Interrupted mid-table: report nothing rather than a mix
            // of answered and fabricated cells.
            None => out.resize(sources.len() * targets.len(), None),
        }
    }

    fn one_to_many(&mut self, s: NodeId, targets: &[NodeId], out: &mut Vec<Option<Dist>>) {
        if targets.len() < O2M_SWEEP_CUTOFF {
            out.clear();
            out.extend(targets.iter().map(|&t| self.query.distance(s, t)));
            return;
        }
        let engine = self.o2m();
        if engine.run(s) {
            engine.distances_into(targets, out);
        } else {
            // Interrupted: the caller sees it via `interrupted()` and
            // must discard; fill the row so lengths still line up.
            out.clear();
            out.resize(targets.len(), None);
        }
    }

    fn knn(&mut self, s: NodeId, k: usize, poi: PoiRef<'_>, out: &mut Vec<(NodeId, Dist)>) {
        if let Some(entry) = self.pois.get(poi.name) {
            if !entry
                .index
                .knn(self.ch.search_graph(), &mut self.knn_ws, s, k, out)
            {
                out.clear();
            }
            return;
        }
        // No buckets registered under this name (e.g. the caller
        // resolved the set elsewhere): brute-force over the vertex list.
        let mut row = Vec::with_capacity(poi.nodes.len());
        self.one_to_many(s, poi.nodes, &mut row);
        out.clear();
        out.extend(
            poi.nodes
                .iter()
                .zip(row.iter())
                .filter_map(|(&p, d)| d.map(|d| (p, d))),
        );
        out.sort_unstable_by_key(|&(p, d)| (d, p));
        out.truncate(k);
    }

    fn range(&mut self, s: NodeId, limit: Dist, out: &mut Vec<(NodeId, Dist)>) -> bool {
        let engine = self.o2m();
        if !engine.range(s, limit, out) {
            out.clear();
        }
        true
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        self.query.set_budget(budget.clone());
        if let Some(engine) = self.o2m.as_mut() {
            engine.set_budget(budget.clone());
        }
        if let Some(batch) = self.batch.as_mut() {
            batch.set_budget(budget.clone());
        }
        self.knn_ws.set_budget(budget.clone());
        self.budget = budget;
    }

    fn interrupted(&self) -> bool {
        self.query.budget_exhausted()
            || self.o2m.as_ref().is_some_and(|e| e.interrupted())
            || self.batch.as_ref().is_some_and(|b| b.budget_exhausted())
            || self.knn_ws.interrupted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::grid_graph;

    fn backend_with_pois(g: &RoadNetwork) -> (ManyBackend, PoiSet) {
        let ch = Arc::new(ContractionHierarchy::build(g));
        let set = PoiSet::sample(g, "poi", 6, 11).unwrap();
        let index = PoiIndex::build(&ch, &set).unwrap();
        let pois = PoiTable::empty();
        pois.install(vec![PoiEntry {
            set: set.clone(),
            index,
        }])
        .unwrap();
        (ManyBackend::new(ch, pois), set)
    }

    #[test]
    fn session_one_to_many_exact_on_both_routing_paths() {
        let g = grid_graph(12, 12);
        let (backend, _) = backend_with_pois(&g);
        let mut session = backend.session(&g);
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(&g, 5);
        // Below the cutoff (loop path) and above it (sweep path).
        for m in [3usize, 100] {
            let targets: Vec<NodeId> = (0..m as NodeId).collect();
            let mut out = Vec::new();
            session.one_to_many(5, &targets, &mut out);
            assert!(!session.interrupted());
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(out[j], d.distance(t), "m={m} t={t}");
            }
        }
    }

    #[test]
    fn session_batch_routes_single_row_to_sweep() {
        let g = grid_graph(10, 10);
        let (backend, _) = backend_with_pois(&g);
        let mut session = backend.session(&g);
        let targets: Vec<NodeId> = (0..100).collect();
        let mut batch = Vec::new();
        session.distances(&[7], &targets, &mut batch);
        let mut direct = Vec::new();
        session.one_to_many(7, &targets, &mut direct);
        assert_eq!(batch, direct);
    }

    #[test]
    fn session_knn_uses_buckets_and_matches_brute_force() {
        let g = grid_graph(9, 9);
        let (backend, set) = backend_with_pois(&g);
        let mut session = backend.session(&g);
        let mut d = Dijkstra::new(g.num_nodes());
        for s in [0u32, 40, 80] {
            d.run(&g, s);
            let mut expect: Vec<(NodeId, Dist)> = set
                .nodes()
                .iter()
                .filter_map(|&p| d.distance(p).map(|x| (p, x)))
                .collect();
            expect.sort_unstable_by_key(|&(p, x)| (x, p));
            expect.truncate(3);
            let mut got = Vec::new();
            session.knn(
                s,
                3,
                PoiRef {
                    name: "poi",
                    nodes: set.nodes(),
                },
                &mut got,
            );
            assert_eq!(got, expect, "s={s}");
            // An unregistered name falls back to brute force over the
            // provided vertex list — same answers.
            session.knn(
                s,
                3,
                PoiRef {
                    name: "unregistered",
                    nodes: set.nodes(),
                },
                &mut got,
            );
            assert_eq!(got, expect, "fallback s={s}");
        }
    }

    #[test]
    fn session_range_exact() {
        let g = grid_graph(8, 8);
        let (backend, _) = backend_with_pois(&g);
        let mut session = backend.session(&g);
        let mut d = Dijkstra::new(g.num_nodes());
        d.run(&g, 0);
        let mut out = Vec::new();
        assert!(session.range(0, 6, &mut out));
        let expect: Vec<(NodeId, Dist)> = (0..64)
            .filter_map(|v| d.distance(v).filter(|&x| x <= 6).map(|x| (v, x)))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn deadline_interrupts_every_shape() {
        let g = grid_graph(10, 10);
        let (backend, set) = backend_with_pois(&g);
        let mut session = backend.session(&g);
        session.set_budget(QueryBudget::unlimited().with_node_cap(1));
        let targets: Vec<NodeId> = (0..100).collect();
        let mut row = Vec::new();
        session.one_to_many(0, &targets, &mut row);
        assert!(session.interrupted(), "o2m must trip");

        session.set_budget(QueryBudget::unlimited().with_node_cap(1));
        let mut hits = Vec::new();
        session.knn(
            0,
            2,
            PoiRef {
                name: "poi",
                nodes: set.nodes(),
            },
            &mut hits,
        );
        assert!(session.interrupted(), "knn must trip");
        assert!(hits.is_empty());

        session.set_budget(QueryBudget::unlimited().with_node_cap(1));
        let mut out = Vec::new();
        assert!(session.range(0, 100, &mut out));
        assert!(session.interrupted(), "range must trip");
        assert!(out.is_empty());

        // Fresh budget -> everything recovers.
        session.set_budget(QueryBudget::unlimited());
        session.one_to_many(0, &targets, &mut row);
        assert!(!session.interrupted());
        assert_eq!(row[0], Some(0));
    }

    #[test]
    fn poi_table_installs_once() {
        let table = PoiTable::empty();
        assert!(table.entries().is_empty());
        assert!(table.get("x").is_none());
        table.install(Vec::new()).unwrap();
        assert!(table.install(Vec::new()).is_err());
    }
}
