//! SILC query processing: first-hop walking (paper §3.4).

use spq_graph::backend::QueryBudget;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

use crate::index::Silc;

/// Reusable SILC query workspace.
pub struct SilcQuery<'a> {
    silc: &'a Silc,
    net: &'a RoadNetwork,
    /// Budget charged once per first-hop step. Besides deadlines, this
    /// bounds the walk on a defective colour map (whose `while cur != t`
    /// would otherwise never terminate).
    budget: QueryBudget,
    /// Number of colour lookups performed by the most recent query (= k,
    /// the number of edges on the path).
    pub last_lookups: usize,
}

impl<'a> SilcQuery<'a> {
    /// Creates a workspace over an index and the network it was built
    /// from.
    pub fn new(silc: &'a Silc, net: &'a RoadNetwork) -> Self {
        assert_eq!(silc.num_nodes(), net.num_nodes(), "index/network mismatch");
        SilcQuery {
            silc,
            net,
            budget: QueryBudget::unlimited(),
            last_lookups: 0,
        }
    }

    /// Installs the cancellation budget subsequent queries run under
    /// (one charge per walk step). The default is unlimited.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether a query since the last [`SilcQuery::set_budget`] was cut
    /// short by the budget (its `None` is an abort, not "unreachable").
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted()
    }

    /// Neighbour of `cur` that starts the shortest path to `t`.
    #[inline]
    fn first_hop(&self, cur: NodeId, t: NodeId) -> (NodeId, Dist) {
        let color = self.silc.color_of(cur, t);
        let (v, w) = self
            .net
            .neighbors(cur)
            .nth(color as usize)
            .expect("colour indexes a live neighbour");
        (v, w as Dist)
    }

    /// Shortest-path query (§2): O(k log n) colour lookups.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        self.last_lookups = 0;
        let mut path = vec![s];
        let mut total: Dist = 0;
        let mut cur = s;
        while cur != t {
            if !self.budget.charge() {
                return None;
            }
            let (v, w) = self.first_hop(cur, t);
            self.last_lookups += 1;
            total += w;
            path.push(v);
            cur = v;
        }
        Some((total, path))
    }

    /// Distance query (§2). SILC "needs to first compute the shortest
    /// path from s to t, and then return the sum of the lengths of the
    /// edges in the path" (§3.4) — there is no shortcut, which is why CH
    /// and TNR dominate SILC on distance queries for far-apart pairs.
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.last_lookups = 0;
        let mut total: Dist = 0;
        let mut cur = s;
        while cur != t {
            if !self.budget.charge() {
                return None;
            }
            let (v, w) = self.first_hop(cur, t);
            self.last_lookups += 1;
            total += w;
            cur = v;
        }
        Some(total)
    }
}

// ---------------------------------------------------------------------------
// spq-serve integration: SILC behind the unified backend interface.

impl spq_graph::backend::Backend for Silc {
    fn backend_name(&self) -> &'static str {
        "SILC"
    }

    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn spq_graph::backend::Session + 'a> {
        Box::new(self.query(net))
    }
}

impl spq_graph::backend::Session for SilcQuery<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        SilcQuery::distance(self, s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        SilcQuery::shortest_path(self, s, t)
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        SilcQuery::set_budget(self, budget);
    }

    fn interrupted(&self) -> bool {
        self.budget_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};

    fn check_all_pairs(net: &RoadNetwork) {
        let silc = Silc::build(net);
        let mut q = silc.query(net);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(net, s);
            for t in 0..net.num_nodes() as NodeId {
                let expect = d.distance(t);
                assert_eq!(q.distance(s, t), expect, "distance ({s},{t})");
                let (pd, path) = q.shortest_path(s, t).unwrap();
                assert_eq!(Some(pd), expect, "length ({s},{t})");
                assert_eq!(path.first().copied(), Some(s));
                assert_eq!(path.last().copied(), Some(t));
                assert_eq!(net.path_length(&path), expect, "valid ({s},{t})");
            }
        }
    }

    #[test]
    fn figure1_all_pairs_exact() {
        check_all_pairs(&figure1());
    }

    #[test]
    fn grid_all_pairs_exact() {
        check_all_pairs(&grid_graph(9, 7));
    }

    #[test]
    fn synthetic_random_pairs_exact() {
        let net = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(700, 61));
        let silc = Silc::build(&net);
        let mut q = silc.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as u64;
        let mut state = 42u64;
        for _ in 0..80 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(9);
            let s = ((state >> 33) % n) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(9);
            let t = ((state >> 33) % n) as NodeId;
            d.run_to_target(&net, s, t);
            assert_eq!(q.distance(s, t), d.distance(t), "({s},{t})");
        }
    }

    #[test]
    fn lookup_count_equals_path_edges() {
        let net = grid_graph(12, 3);
        let silc = Silc::build(&net);
        let mut q = silc.query(&net);
        let (d, path) = q.shortest_path(0, 11).unwrap();
        assert_eq!(d, 11);
        assert_eq!(q.last_lookups, path.len() - 1);
        q.distance(5, 5).unwrap();
        assert_eq!(q.last_lookups, 0);
    }
}
