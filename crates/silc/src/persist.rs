//! Binary persistence for SILC indexes.
//!
//! SILC preprocessing is the most expensive in the suite (all-pairs
//! shortest paths, Figure 6(b)), so shipping the compressed colour maps
//! instead of recomputing them matters most here. The format dumps the
//! per-source CSR arrays directly; the serialised bytes double as the
//! determinism witness for parallel builds (`tests/determinism.rs`).

use std::io::{self, Read, Write};

use spq_graph::binio;

use crate::index::Silc;

const MAGIC: &[u8; 4] = b"SPQS";
const VERSION: u32 = 1;

impl Silc {
    /// Serialises the Morton codes and the per-source block/exception
    /// CSR arrays.
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        binio::write_header(w, MAGIC, VERSION)?;
        binio::write_u64s(w, &self.node_code)?;
        binio::write_u32s(w, &self.block_first)?;
        binio::write_u64s(w, &self.block_code)?;
        binio::write_u8s(w, &self.block_color)?;
        binio::write_u32s(w, &self.exc_first)?;
        binio::write_u32s(w, &self.exc_node)?;
        binio::write_u8s(w, &self.exc_color)?;
        Ok(())
    }

    /// Deserialises an index written by [`Silc::write_binary`].
    pub fn read_binary(r: &mut impl Read) -> io::Result<Silc> {
        let version = binio::read_header(r, MAGIC)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported SILC format version {version}"),
            ));
        }
        let node_code = binio::read_u64s(r)?;
        let block_first = binio::read_u32s(r)?;
        let block_code = binio::read_u64s(r)?;
        let block_color = binio::read_u8s(r)?;
        let exc_first = binio::read_u32s(r)?;
        let exc_node = binio::read_u32s(r)?;
        let exc_color = binio::read_u8s(r)?;
        let bad = |msg: &str| Err(io::Error::new(io::ErrorKind::InvalidData, msg.to_string()));
        let n = node_code.len();
        if block_first.len() != n + 1 || exc_first.len() != n + 1 {
            return bad("CSR offsets do not match the vertex count");
        }
        if block_first[n] as usize != block_code.len()
            || block_code.len() != block_color.len()
            || exc_first[n] as usize != exc_node.len()
            || exc_node.len() != exc_color.len()
        {
            return bad("CSR payload lengths do not match their offsets");
        }
        Ok(Silc {
            node_code,
            block_first,
            block_code,
            block_color,
            exc_first,
            exc_node,
            exc_color,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::grid_graph;
    use spq_graph::types::NodeId;

    #[test]
    fn roundtrip_answers_identically() {
        let g = grid_graph(6, 5);
        let silc = Silc::build(&g);
        let mut buf = Vec::new();
        silc.write_binary(&mut buf).unwrap();
        let silc2 = Silc::read_binary(&mut &buf[..]).unwrap();
        let mut q1 = silc.query(&g);
        let mut q2 = silc2.query(&g);
        for s in 0..g.num_nodes() as NodeId {
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(q1.shortest_path(s, t), q2.shortest_path(s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn rejects_inconsistent_payloads() {
        let g = grid_graph(4, 4);
        let silc = Silc::build(&g);
        let mut buf = Vec::new();
        silc.write_binary(&mut buf).unwrap();
        buf[2] ^= 0xff;
        assert!(Silc::read_binary(&mut &buf[..]).is_err());
        let mut buf2 = Vec::new();
        silc.write_binary(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 1); // drop one exception colour
        assert!(Silc::read_binary(&mut &buf2[..]).is_err());
    }
}
