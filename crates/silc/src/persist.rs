//! Binary persistence for SILC indexes.
//!
//! SILC preprocessing is the most expensive in the suite (all-pairs
//! shortest paths, Figure 6(b)), so shipping the compressed colour maps
//! instead of recomputing them matters most here. The format dumps the
//! per-source CSR arrays directly; the serialised bytes double as the
//! determinism witness for parallel builds (`tests/determinism.rs`).

use std::io::{self, Read, Write};

use spq_graph::binio::{self, IndexLoadError};

use crate::index::Silc;

const MAGIC: &[u8; 4] = b"SPQS";
/// Version 2 wraps the payload in the checksummed container; version-1
/// files predate it and are refused at load (rebuild to migrate).
const VERSION: u32 = 2;

impl Silc {
    /// Serialises the Morton codes and the per-source block/exception
    /// CSR arrays inside a checksummed container.
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        binio::write_u64s(&mut body, &self.node_code)?;
        binio::write_u32s(&mut body, &self.block_first)?;
        binio::write_u64s(&mut body, &self.block_code)?;
        binio::write_u8s(&mut body, &self.block_color)?;
        binio::write_u32s(&mut body, &self.exc_first)?;
        binio::write_u32s(&mut body, &self.exc_node)?;
        binio::write_u8s(&mut body, &self.exc_color)?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Deserialises an index written by [`Silc::write_binary`],
    /// verifying the checksum and CSR invariants before returning it.
    pub fn read_binary(r: &mut impl Read) -> Result<Silc, IndexLoadError> {
        let body = binio::read_checksummed(r, MAGIC, VERSION)?;
        let r = &mut &body[..];
        let node_code = binio::read_u64s(r)?;
        let block_first = binio::read_u32s(r)?;
        let block_code = binio::read_u64s(r)?;
        let block_color = binio::read_u8s(r)?;
        let exc_first = binio::read_u32s(r)?;
        let exc_node = binio::read_u32s(r)?;
        let exc_color = binio::read_u8s(r)?;
        let bad = |msg: &str| Err(IndexLoadError::Corrupt(msg.to_string()));
        let n = node_code.len();
        if block_first.len() != n + 1 || exc_first.len() != n + 1 {
            return bad("CSR offsets do not match the vertex count");
        }
        if block_first[n] as usize != block_code.len()
            || block_code.len() != block_color.len()
            || exc_first[n] as usize != exc_node.len()
            || exc_node.len() != exc_color.len()
        {
            return bad("CSR payload lengths do not match their offsets");
        }
        Ok(Silc {
            node_code,
            block_first,
            block_code,
            block_color,
            exc_first,
            exc_node,
            exc_color,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::grid_graph;
    use spq_graph::types::NodeId;

    #[test]
    fn roundtrip_answers_identically() {
        let g = grid_graph(6, 5);
        let silc = Silc::build(&g);
        let mut buf = Vec::new();
        silc.write_binary(&mut buf).unwrap();
        let silc2 = Silc::read_binary(&mut &buf[..]).unwrap();
        let mut q1 = silc.query(&g);
        let mut q2 = silc2.query(&g);
        for s in 0..g.num_nodes() as NodeId {
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(q1.shortest_path(s, t), q2.shortest_path(s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn rejects_inconsistent_payloads() {
        let g = grid_graph(4, 4);
        let silc = Silc::build(&g);
        let mut buf = Vec::new();
        silc.write_binary(&mut buf).unwrap();
        buf[2] ^= 0xff;
        assert!(Silc::read_binary(&mut &buf[..]).is_err());
        let mut buf2 = Vec::new();
        silc.write_binary(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 1); // drop one exception colour
        assert!(Silc::read_binary(&mut &buf2[..]).is_err());
    }
}
