//! Spatially Induced Linkage Cognizance (SILC), the spatial-coherence
//! index of Samet et al. evaluated as the paper's §3.4 technique.
//!
//! SILC pre-computes all-pairs shortest paths and stores, for every
//! source vertex `v`, a *colouring* of the remaining vertices: each
//! vertex `u` is coloured by the neighbour of `v` that starts the
//! (canonical) shortest path from `v` to `u`. Because shortest paths are
//! spatially coherent, equally-coloured vertices cluster in space, so
//! each colouring compresses into O(√n) axis-aligned quadtree squares,
//! stored as intervals of the Morton (Z-order) curve (paper Appendix D).
//!
//! A shortest-path query walks first hops: look up `t`'s colour in `s`'s
//! table (a binary search, O(log n)), hop to that neighbour, repeat —
//! O(k log n) for a k-edge path. A distance query computes the path and
//! returns its length (§3.4: SILC has no faster distance routine, which
//! is exactly why CH/TNR beat it on distance queries in Figures 8–9).
//!
//! # Example
//!
//! ```
//! use spq_graph::toy::figure1;
//! use spq_silc::Silc;
//!
//! let g = figure1();
//! let silc = Silc::build(&g);
//! let mut q = silc.query(&g);
//! let (d, path) = q.shortest_path(2, 6).unwrap(); // v3 -> v7
//! assert_eq!(d, 6);
//! assert_eq!(g.path_length(&path), Some(6));
//! ```

pub mod index;
pub mod persist;
pub mod query;

pub use index::Silc;
pub use query::SilcQuery;
