//! SILC preprocessing: colouring + quadtree compression.

use spq_dijkstra::Dijkstra;
use spq_graph::geo::morton;
use spq_graph::par;
use spq_graph::size::IndexSize;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;

/// Colour values are indices into a vertex's adjacency block; road
/// networks are degree-bounded (paper §2) far below 255.
pub(crate) const NO_COLOR: u8 = u8::MAX;

/// The frozen SILC index.
#[derive(Debug, Clone)]
pub struct Silc {
    /// Morton code of each vertex (coordinates normalised to u32).
    pub(crate) node_code: Vec<u64>,
    /// Per-source CSR over compressed colour blocks.
    pub(crate) block_first: Vec<u32>,
    /// Morton start code of each block (sorted within a source's slice).
    pub(crate) block_code: Vec<u64>,
    /// First-hop colour of each block.
    pub(crate) block_color: Vec<u8>,
    /// Rare per-node exceptions `(source-relative sorted (node, colour))`
    /// for vertices sharing one coordinate but not one colour.
    pub(crate) exc_first: Vec<u32>,
    pub(crate) exc_node: Vec<NodeId>,
    pub(crate) exc_color: Vec<u8>,
}

impl Silc {
    /// Preprocesses `net`: n Dijkstra traversals, one per source, each
    /// followed by quadtree compression of the resulting colouring. This
    /// is the all-pairs cost the paper highlights in Figure 6(b); the
    /// per-source trees are independent, so sources fan out over the
    /// preprocessing worker pool ([`spq_graph::par`]) with one Dijkstra
    /// and colour buffer per worker, and the per-source results are
    /// concatenated in source order — byte-identical to a sequential
    /// build.
    pub fn build(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        let rect = net.bounding_rect();
        let node_code: Vec<u64> = (0..n as NodeId)
            .map(|v| {
                let p = net.coord(v);
                morton::encode(
                    (p.x as i64 - rect.min_x as i64) as u32,
                    (p.y as i64 - rect.min_y as i64) as u32,
                )
            })
            .collect();
        // Vertices in Morton order; ties (equal coordinates) grouped.
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_unstable_by_key(|&v| node_code[v as usize]);
        let sorted_codes: Vec<u64> = order.iter().map(|&v| node_code[v as usize]).collect();

        // One compressed colouring per source, in parallel.
        let per_source = par::par_map_index(
            n,
            || (Dijkstra::new(n), vec![NO_COLOR; n]),
            |(dijkstra, colors), v| {
                let v = v as NodeId;
                dijkstra.run(net, v);
                // Colour every vertex by the adjacency index of its
                // first hop.
                for u in 0..n as NodeId {
                    colors[u as usize] = match dijkstra.first_hop(u) {
                        Some(h) => neighbor_index(net, v, h),
                        None => NO_COLOR, // u == v
                    };
                }
                let mut block_code = Vec::new();
                let mut block_color = Vec::new();
                let mut exc_node = Vec::new();
                let mut exc_color = Vec::new();
                compress(
                    &order,
                    &sorted_codes,
                    colors,
                    &mut block_code,
                    &mut block_color,
                    &mut exc_node,
                    &mut exc_color,
                );
                // The DFS emits blocks out of order; each source's slice
                // must be sorted by start code for the predecessor search.
                sort_parallel(&mut block_code, &mut block_color);
                sort_parallel(&mut exc_node, &mut exc_color);
                (block_code, block_color, exc_node, exc_color)
            },
        );

        // Concatenate in source order.
        let mut block_first = vec![0u32; n + 1];
        let mut block_code = Vec::new();
        let mut block_color = Vec::new();
        let mut exc_first = vec![0u32; n + 1];
        let mut exc_node = Vec::new();
        let mut exc_color = Vec::new();
        for (v, (codes, colors_v, excn, excc)) in per_source.into_iter().enumerate() {
            block_code.extend_from_slice(&codes);
            block_color.extend_from_slice(&colors_v);
            exc_node.extend_from_slice(&excn);
            exc_color.extend_from_slice(&excc);
            block_first[v + 1] = block_code.len() as u32;
            exc_first[v + 1] = exc_node.len() as u32;
        }

        Silc {
            node_code,
            block_first,
            block_code,
            block_color,
            exc_first,
            exc_node,
            exc_color,
        }
    }

    /// Number of vertices indexed.
    pub fn num_nodes(&self) -> usize {
        self.node_code.len()
    }

    /// Total compressed blocks over all sources (the paper's O(n√n)).
    pub fn num_blocks(&self) -> usize {
        self.block_code.len()
    }

    /// Average blocks per source.
    pub fn avg_blocks_per_source(&self) -> f64 {
        self.num_blocks() as f64 / self.num_nodes().max(1) as f64
    }

    /// The first-hop colour of `target` in `source`'s table.
    #[inline]
    pub(crate) fn color_of(&self, source: NodeId, target: NodeId) -> u8 {
        // Exceptions first (usually an empty slice).
        let elo = self.exc_first[source as usize] as usize;
        let ehi = self.exc_first[source as usize + 1] as usize;
        if elo != ehi {
            if let Ok(k) = self.exc_node[elo..ehi].binary_search(&target) {
                return self.exc_color[elo + k];
            }
        }
        let lo = self.block_first[source as usize] as usize;
        let hi = self.block_first[source as usize + 1] as usize;
        let code = self.node_code[target as usize];
        let blocks = &self.block_code[lo..hi];
        let idx = match blocks.binary_search(&code) {
            Ok(k) => k,
            Err(0) => 0, // target below the first block cannot happen
            Err(k) => k - 1,
        };
        self.block_color[lo + idx]
    }

    /// Creates a query workspace bound to the network the index was
    /// built from.
    pub fn query<'a>(&'a self, net: &'a RoadNetwork) -> crate::query::SilcQuery<'a> {
        crate::query::SilcQuery::new(self, net)
    }
}

/// Sorts two parallel slices by the key slice.
fn sort_parallel<K: Copy + Ord>(keys: &mut [K], vals: &mut [u8]) {
    let mut zipped: Vec<(K, u8)> = keys.iter().copied().zip(vals.iter().copied()).collect();
    zipped.sort_unstable_by_key(|&(k, _)| k);
    for (i, (k, c)) in zipped.into_iter().enumerate() {
        keys[i] = k;
        vals[i] = c;
    }
}

/// Adjacency index of neighbour `h` of `v`.
#[inline]
fn neighbor_index(net: &RoadNetwork, v: NodeId, h: NodeId) -> u8 {
    for (i, (to, _)) in net.neighbors(v).enumerate() {
        if to == h {
            debug_assert!(i < NO_COLOR as usize);
            return i as u8;
        }
    }
    unreachable!("first hop is a neighbour of the source")
}

/// Compresses one source's colouring into maximal uniform quad blocks
/// (appended to the output vectors). Vertices with `NO_COLOR` (the
/// source itself) are ignored. Same-coordinate colour conflicts become
/// per-node exceptions.
fn compress(
    order: &[NodeId],
    sorted_codes: &[u64],
    colors: &[u8],
    block_code: &mut Vec<u64>,
    block_color: &mut Vec<u8>,
    exc_node: &mut Vec<NodeId>,
    exc_color: &mut Vec<u8>,
) {
    // Iterative stack of (range_lo, range_hi, prefix_code, level) where
    // level = number of *remaining* bit pairs below this block. The root
    // block covers the whole 64-bit Morton space.
    let mut stack: Vec<(usize, usize, u64, u32)> = vec![(0, order.len(), 0, 32)];
    while let Some((lo, hi, prefix, level)) = stack.pop() {
        // Find the uniform colour, skipping NO_COLOR entries.
        let mut uniform: Option<u8> = None;
        let mut mixed = false;
        for i in lo..hi {
            let c = colors[order[i] as usize];
            if c == NO_COLOR {
                continue;
            }
            match uniform {
                None => uniform = Some(c),
                Some(u) if u == c => {}
                Some(_) => {
                    mixed = true;
                    break;
                }
            }
        }
        let Some(first_color) = uniform else {
            continue; // empty block (or only the source)
        };
        if !mixed {
            block_code.push(prefix);
            block_color.push(first_color);
            continue;
        }
        if level == 0 {
            // All vertices share one exact coordinate but not one colour:
            // store exceptions (sorted by node id below).
            let mut entries: Vec<(NodeId, u8)> = (lo..hi)
                .filter(|&i| colors[order[i] as usize] != NO_COLOR)
                .map(|i| (order[i], colors[order[i] as usize]))
                .collect();
            entries.sort_unstable();
            // Also emit a block so the pred-search finds *something*
            // for codes equal to this one (exceptions take precedence).
            block_code.push(prefix);
            block_color.push(first_color);
            for (node, c) in entries {
                exc_node.push(node);
                exc_color.push(c);
            }
            continue;
        }
        // Split into the four children in Morton order.
        let child_span = 2 * (level - 1);
        let mut start = lo;
        for q in 0..4u64 {
            let child_prefix = prefix | (q << child_span);
            let child_end_code = if q == 3 {
                // Upper bound of the last child = upper bound of parent.
                prefix.wrapping_add(1u64.checked_shl(2 * level).unwrap_or(0).wrapping_sub(1))
            } else {
                child_prefix + ((1u64 << child_span) - 1)
            };
            // Advance to the end of this child's range.
            let end = start + sorted_codes[start..hi].partition_point(|&c| c <= child_end_code);
            if end > start {
                stack.push((start, end, child_prefix, level - 1));
            }
            start = end;
        }
        debug_assert_eq!(start, hi);
    }
    // Blocks were pushed in stack order; each source's slice must be
    // sorted by code for binary search.
    // (Sorting here keeps the caller simple; slices are small.)
}

impl IndexSize for Silc {
    fn index_size_bytes(&self) -> usize {
        self.node_code.len() * 8
            + self.block_first.len() * 4
            + self.block_code.len() * 8
            + self.block_color.len()
            + self.exc_first.len() * 4
            + self.exc_node.len() * 4
            + self.exc_color.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::figure1;

    #[test]
    fn figure4_partition_of_v8() {
        // §3.4: from v8 the paths to v4..v7 pass through v6, the paths to
        // v1 and v3 through v1, and v2 is its own class — 3 classes.
        let g = figure1();
        let silc = Silc::build(&g);
        let q8 = |t: NodeId| silc.color_of(7, t);
        // Colours map to adjacency indices of v8; recover neighbours.
        let neigh: Vec<NodeId> = g.neighbors(7).map(|(v, _)| v).collect();
        assert_eq!(neigh[q8(0) as usize], 0, "v1 via v1");
        assert_eq!(neigh[q8(2) as usize], 0, "v3 via v1");
        assert_eq!(neigh[q8(1) as usize], 1, "v2 via itself");
        for t in [3u32, 4, 5, 6] {
            assert_eq!(neigh[q8(t) as usize], 5, "v{} via v6", t + 1);
        }
    }

    #[test]
    fn blocks_are_sorted_per_source() {
        let g = figure1();
        let silc = Silc::build(&g);
        for v in 0..8 {
            let lo = silc.block_first[v] as usize;
            let hi = silc.block_first[v + 1] as usize;
            let s = &silc.block_code[lo..hi];
            assert!(s.windows(2).all(|w| w[0] < w[1]), "source {v}: {s:?}");
        }
    }

    #[test]
    fn compression_beats_explicit_listing_on_coherent_networks() {
        let g = spq_graph::toy::grid_graph(20, 20);
        let silc = Silc::build(&g);
        // 400 sources x 399 targets explicit = 159,600 entries; the
        // compressed form must be far below that.
        assert!(silc.num_blocks() < 40_000, "blocks = {}", silc.num_blocks());
        assert!(silc.avg_blocks_per_source() < 100.0);
    }

    #[test]
    fn duplicate_coordinates_fall_back_to_exceptions() {
        use spq_graph::geo::Point;
        use spq_graph::GraphBuilder;
        // Two vertices at the same point whose first hops from source 0
        // differ: 1 and 2 both at (5,5); path 0->1 direct, 0->2 direct.
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(5, 5));
        b.add_node(Point::new(5, 5));
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        let g = b.build().unwrap();
        let silc = Silc::build(&g);
        // Colours must still be exact.
        assert_ne!(silc.color_of(0, 1), silc.color_of(0, 2));
        let neigh: Vec<NodeId> = g.neighbors(0).map(|(v, _)| v).collect();
        assert_eq!(neigh[silc.color_of(0, 1) as usize], 1);
        assert_eq!(neigh[silc.color_of(0, 2) as usize], 2);
    }
}
