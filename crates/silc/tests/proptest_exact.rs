//! Property: SILC is exact on arbitrary connected graphs, and its
//! quadtree blocks exactly encode the first-hop colouring.

use proptest::prelude::*;
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::small_connected_network;
use spq_graph::types::NodeId;
use spq_silc::Silc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn exact_on_arbitrary_graphs(net in small_connected_network()) {
        let silc = Silc::build(&net);
        let mut q = silc.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(&net, s);
            for t in 0..net.num_nodes() as NodeId {
                prop_assert_eq!(q.distance(s, t), d.distance(t));
                let (pd, path) = q.shortest_path(s, t).unwrap();
                prop_assert_eq!(Some(pd), d.distance(t));
                prop_assert_eq!(net.path_length(&path), d.distance(t));
                prop_assert_eq!(path.first().copied(), Some(s));
                prop_assert_eq!(path.last().copied(), Some(t));
            }
        }
    }
}
