//! Property: ALT's landmark potential is admissible and its A* is exact
//! on arbitrary connected graphs.

use proptest::prelude::*;
use spq_alt::{Alt, AltParams};
use spq_dijkstra::Dijkstra;
use spq_graph::arbitrary::small_connected_network;
use spq_graph::types::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn exact_and_admissible(net in small_connected_network(), k in 1usize..8) {
        let alt = Alt::build(&net, &AltParams { num_landmarks: k, seed: 11, ..AltParams::default() });
        let mut q = alt.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        for s in 0..net.num_nodes() as NodeId {
            d.run(&net, s);
            for t in 0..net.num_nodes() as NodeId {
                let truth = d.distance(t).unwrap();
                prop_assert!(alt.lower_bound(s, t) <= truth, "inadmissible bound");
                prop_assert_eq!(q.distance(s, t), Some(truth));
                let (pd, path) = q.shortest_path(s, t).unwrap();
                prop_assert_eq!(pd, truth);
                prop_assert_eq!(net.path_length(&path), Some(truth));
            }
        }
    }
}
