//! ALT — A* search with landmarks and the triangle inequality — the
//! goal-directed technique of Goldberg & Harrelson that the paper's
//! Appendix A surveys ("ALT preprocesses the road network by first
//! selecting a small set of vertices, called the landmarks... With the
//! pre-computed distances, we can efficiently derive a lower bound...
//! ALT incorporates such lower bounds with Dijkstra's algorithm").
//!
//! Appendix A reports that ALT (like the other surveyed methods except
//! HiTi/HEPV) was "previously shown to be inferior to CH in terms of
//! both space overhead and query performance"; the `appendix_a_alt`
//! experiment binary reproduces that relation on our networks.
//!
//! # Example
//!
//! ```
//! use spq_synth::SynthParams;
//! use spq_alt::{Alt, AltParams};
//!
//! let net = spq_synth::generate(&SynthParams::with_target_vertices(400, 4));
//! let alt = Alt::build(&net, &AltParams::default());
//! let mut q = alt.query(&net);
//! let t = (net.num_nodes() - 1) as u32;
//! assert!(q.distance(0, t).is_some());
//! ```

pub mod landmarks;
pub mod persist;
pub mod query;

pub use landmarks::{Alt, AltParams, LandmarkSelection};
pub use query::AltQuery;
