//! Binary persistence for ALT indexes.
//!
//! The landmark table is the whole index (`k × n` u32 distances plus the
//! landmark ids), so the format is a direct dump of those arrays. The
//! serialised bytes double as the determinism witness for parallel
//! builds (`tests/determinism.rs`).

use std::io::{self, Read, Write};

use spq_graph::binio::{self, IndexLoadError};
use spq_graph::types::NodeId;

use crate::landmarks::Alt;

const MAGIC: &[u8; 4] = b"SPQA";
/// Version 2 wraps the payload in the checksummed container; version-1
/// files predate it and are refused at load (rebuild to migrate).
const VERSION: u32 = 2;

impl Alt {
    /// Serialises the landmark ids and the distance table inside a
    /// checksummed container.
    pub fn write_binary(&self, w: &mut impl Write) -> io::Result<()> {
        let mut body = Vec::new();
        binio::write_u64(&mut body, self.num_nodes() as u64)?;
        binio::write_u32s(&mut body, self.landmarks())?;
        binio::write_u32s(&mut body, self.dist_table())?;
        binio::write_checksummed(w, MAGIC, VERSION, &body)
    }

    /// Deserialises an index written by [`Alt::write_binary`], verifying
    /// the checksum and structural invariants before returning it.
    pub fn read_binary(r: &mut impl Read) -> Result<Alt, IndexLoadError> {
        let body = binio::read_checksummed(r, MAGIC, VERSION)?;
        let r = &mut &body[..];
        let n = binio::read_u64(r)? as usize;
        let landmarks: Vec<NodeId> = binio::read_u32s(r)?;
        let dist = binio::read_u32s(r)?;
        Alt::from_raw_parts(landmarks, dist, n).map_err(IndexLoadError::Corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::AltParams;
    use spq_graph::toy::grid_graph;
    use spq_graph::types::NodeId;

    #[test]
    fn roundtrip_answers_identically() {
        let g = grid_graph(7, 6);
        let alt = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 4,
                ..AltParams::default()
            },
        );
        let mut buf = Vec::new();
        alt.write_binary(&mut buf).unwrap();
        let alt2 = Alt::read_binary(&mut &buf[..]).unwrap();
        assert_eq!(alt2.landmarks(), alt.landmarks());
        for v in 0..g.num_nodes() as NodeId {
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(alt2.lower_bound(v, t), alt.lower_bound(v, t));
            }
        }
    }

    #[test]
    fn rejects_inconsistent_payloads() {
        let g = grid_graph(4, 4);
        let alt = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 3,
                ..AltParams::default()
            },
        );
        let mut buf = Vec::new();
        alt.write_binary(&mut buf).unwrap();
        buf[0] ^= 0xff;
        assert!(matches!(
            Alt::read_binary(&mut &buf[..]),
            Err(IndexLoadError::BadMagic { .. })
        ));
        let mut buf2 = Vec::new();
        alt.write_binary(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 4); // table no longer k × n
        assert!(matches!(
            Alt::read_binary(&mut &buf2[..]),
            Err(IndexLoadError::Truncated { .. })
        ));
        // A flipped byte inside the table trips the checksum.
        let mut buf3 = Vec::new();
        alt.write_binary(&mut buf3).unwrap();
        let mid = buf3.len() / 2;
        buf3[mid] ^= 0x80;
        assert!(matches!(
            Alt::read_binary(&mut &buf3[..]),
            Err(IndexLoadError::ChecksumMismatch { .. })
        ));
    }
}
