//! Landmark selection and the distance table.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spq_dijkstra::Dijkstra;
use spq_graph::par;
use spq_graph::size::IndexSize;
use spq_graph::types::{Dist, NodeId};
use spq_graph::RoadNetwork;

/// How landmarks are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LandmarkSelection {
    /// Farthest-point traversal (the classic default): each new landmark
    /// maximises its network distance to the chosen set. Gives
    /// peripheral, well-spread landmarks and the strongest bounds.
    #[default]
    Farthest,
    /// Uniformly random vertices — the cheap baseline; the ablation
    /// bench quantifies how much the farthest heuristic buys.
    Random,
}

/// ALT preprocessing parameters.
#[derive(Debug, Clone, Copy)]
pub struct AltParams {
    /// Number of landmarks (classic implementations use 8–32).
    pub num_landmarks: usize,
    /// Landmark selection strategy.
    pub selection: LandmarkSelection,
    /// Seed for the randomised parts of selection.
    pub seed: u64,
}

impl Default for AltParams {
    fn default() -> Self {
        AltParams {
            num_landmarks: 16,
            selection: LandmarkSelection::Farthest,
            seed: 0xa17_0001,
        }
    }
}

/// The ALT index: landmark ids plus the `k × n` landmark-to-vertex
/// distance table (undirected networks need only one direction).
pub struct Alt {
    landmarks: Vec<NodeId>,
    /// Row-major: `dist[l * n + v]` = network distance landmark l ↔ v.
    dist: Vec<u32>,
    n: usize,
}

impl Alt {
    /// Selects landmarks per `params.selection` and tabulates their
    /// distances to every vertex.
    ///
    /// Parallelism: with [`LandmarkSelection::Random`] the landmark set
    /// is fixed up front, so the per-landmark Dijkstra sweeps fan out
    /// over the preprocessing worker pool ([`spq_graph::par`]). With
    /// [`LandmarkSelection::Farthest`] each landmark is the argmax of
    /// the distance minimum over all *previous* landmarks' sweeps — a
    /// sequential fixed point by definition — so its sweeps run in
    /// order, each one doubling as that landmark's table row (no work is
    /// wasted relative to the parallel path). Either way the table holds
    /// exact Dijkstra distances, so the built index is byte-identical
    /// for every thread count.
    pub fn build(net: &RoadNetwork, params: &AltParams) -> Self {
        let n = net.num_nodes();
        let k = params.num_landmarks.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut dijkstra = Dijkstra::new(n);

        // Seed: run one sweep from a random vertex and take the farthest
        // vertex as the first landmark (a periphery point).
        let start = (rng.random::<u64>() % n as u64) as NodeId;
        dijkstra.run(net, start);
        let first = (0..n as NodeId)
            .max_by_key(|&v| dijkstra.distance(v).unwrap_or(0))
            .expect("non-empty network");

        match params.selection {
            LandmarkSelection::Farthest => {
                let mut landmarks = Vec::with_capacity(k);
                let mut dist = Vec::with_capacity(k * n);
                // min over chosen landmarks of dist(l, v).
                let mut min_dist = vec![Dist::MAX; n];
                let mut next = first;
                for _ in 0..k {
                    landmarks.push(next);
                    dijkstra.run(net, next);
                    let row_start = dist.len();
                    dist.resize(row_start + n, 0);
                    for v in 0..n {
                        let d = dijkstra.distance(v as NodeId).expect("connected network");
                        dist[row_start + v] = u32::try_from(d).expect("distances fit u32");
                        if d < min_dist[v] {
                            min_dist[v] = d;
                        }
                    }
                    next = (0..n as NodeId)
                        .max_by_key(|&v| min_dist[v as usize])
                        .expect("non-empty network");
                }
                Alt { landmarks, dist, n }
            }
            LandmarkSelection::Random => {
                let mut landmarks = Vec::with_capacity(k);
                landmarks.push(first);
                while landmarks.len() < k {
                    // Resample until unseen (k ≤ n guarantees progress).
                    let c = (rng.random::<u64>() % n as u64) as NodeId;
                    if !landmarks.contains(&c) {
                        landmarks.push(c);
                    }
                }
                let rows = par::par_map(
                    &landmarks,
                    || Dijkstra::new(n),
                    |dijkstra, &l| {
                        dijkstra.run(net, l);
                        (0..n as NodeId)
                            .map(|v| {
                                let d = dijkstra.distance(v).expect("connected network");
                                u32::try_from(d).expect("distances fit u32")
                            })
                            .collect::<Vec<u32>>()
                    },
                );
                let mut dist = Vec::with_capacity(k * n);
                for row in rows {
                    dist.extend_from_slice(&row);
                }
                Alt { landmarks, dist, n }
            }
        }
    }

    /// Rebuilds an index from its serialised arrays, validating the
    /// `k × n` table shape.
    pub fn from_raw_parts(
        landmarks: Vec<NodeId>,
        dist: Vec<u32>,
        n: usize,
    ) -> Result<Self, String> {
        if landmarks.is_empty() || n == 0 {
            return Err("ALT index must have at least one landmark and vertex".into());
        }
        if dist.len() != landmarks.len() * n {
            return Err(format!(
                "distance table has {} entries, expected {} landmarks × {} vertices",
                dist.len(),
                landmarks.len(),
                n
            ));
        }
        if let Some(&l) = landmarks.iter().find(|&&l| l as usize >= n) {
            return Err(format!("landmark id {l} out of range for {n} vertices"));
        }
        Ok(Alt { landmarks, dist, n })
    }

    /// The selected landmarks.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// The row-major `k × n` landmark-to-vertex distance table.
    pub fn dist_table(&self) -> &[u32] {
        &self.dist
    }

    /// Distance between landmark index `l` and vertex `v`.
    #[inline]
    pub fn landmark_dist(&self, l: usize, v: NodeId) -> Dist {
        self.dist[l * self.n + v as usize] as Dist
    }

    /// The triangle-inequality lower bound on `dist(v, t)`:
    /// `max_l |dist(l, t) - dist(l, v)|`. Admissible and consistent, so
    /// A* with this potential is exact.
    #[inline]
    pub fn lower_bound(&self, v: NodeId, t: NodeId) -> Dist {
        let mut best = 0;
        for l in 0..self.landmarks.len() {
            let dv = self.dist[l * self.n + v as usize] as i64;
            let dt = self.dist[l * self.n + t as usize] as i64;
            let lb = (dt - dv).unsigned_abs();
            if lb > best {
                best = lb;
            }
        }
        best
    }

    /// Number of vertices indexed.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Creates a query workspace.
    pub fn query<'a>(&'a self, net: &'a RoadNetwork) -> crate::query::AltQuery<'a> {
        crate::query::AltQuery::new(self, net)
    }
}

impl IndexSize for Alt {
    fn index_size_bytes(&self) -> usize {
        self.landmarks.len() * 4 + self.dist.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_graph::toy::{figure1, grid_graph};

    #[test]
    fn landmarks_are_distinct_and_peripheral() {
        let g = grid_graph(10, 10);
        let alt = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 4,
                seed: 1,
                ..AltParams::default()
            },
        );
        let mut ls = alt.landmarks().to_vec();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 4, "landmarks must be distinct");
        // Farthest-point selection must spread out: the first two
        // landmarks sit (near-)diametrically apart.
        let mut d = spq_dijkstra::Dijkstra::new(g.num_nodes());
        d.run(&g, alt.landmarks()[0]);
        let spread = d.distance(alt.landmarks()[1]).unwrap();
        let diameter = (0..g.num_nodes() as NodeId)
            .filter_map(|v| d.distance(v))
            .max()
            .unwrap();
        assert!(
            spread * 10 >= diameter * 8,
            "landmarks 0/1 only {spread} apart (diameter-ish {diameter})"
        );
    }

    #[test]
    fn lower_bound_is_admissible_and_tight_at_landmarks() {
        let g = figure1();
        let alt = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 3,
                seed: 2,
                ..AltParams::default()
            },
        );
        let mut d = spq_dijkstra::Dijkstra::new(g.num_nodes());
        for s in 0..8u32 {
            d.run(&g, s);
            for t in 0..8u32 {
                let lb = alt.lower_bound(s, t);
                let truth = d.distance(t).unwrap();
                assert!(lb <= truth, "lb({s},{t}) = {lb} > {truth}");
            }
        }
        // At a landmark the bound is exact for any target.
        let l = alt.landmarks()[0];
        d.run(&g, l);
        for t in 0..8u32 {
            assert_eq!(alt.lower_bound(l, t), d.distance(t).unwrap());
        }
    }

    #[test]
    fn more_landmarks_cost_more_space() {
        let g = grid_graph(8, 8);
        let a4 = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 4,
                seed: 3,
                ..AltParams::default()
            },
        );
        let a8 = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 8,
                seed: 3,
                ..AltParams::default()
            },
        );
        assert_eq!(a8.index_size_bytes(), 2 * a4.index_size_bytes());
    }

    #[test]
    fn random_selection_is_exact_but_weaker() {
        // Random landmarks stay admissible (the bound formula does not
        // care how they were chosen) but spread less well: the farthest
        // heuristic's average lower bound must be at least as tight.
        let g = grid_graph(12, 12);
        let far = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 6,
                seed: 5,
                ..AltParams::default()
            },
        );
        let rnd = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 6,
                selection: LandmarkSelection::Random,
                seed: 5,
            },
        );
        let mut d = spq_dijkstra::Dijkstra::new(g.num_nodes());
        let mut sum_far = 0u64;
        let mut sum_rnd = 0u64;
        for s in (0..g.num_nodes() as NodeId).step_by(7) {
            d.run(&g, s);
            for t in (0..g.num_nodes() as NodeId).step_by(11) {
                let truth = d.distance(t).unwrap();
                let lf = far.lower_bound(s, t);
                let lr = rnd.lower_bound(s, t);
                assert!(lf <= truth);
                assert!(lr <= truth);
                sum_far += lf;
                sum_rnd += lr;
            }
        }
        assert!(sum_far >= sum_rnd, "farthest {sum_far} vs random {sum_rnd}");
    }

    #[test]
    fn landmark_count_is_clamped() {
        let g = figure1();
        let alt = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 100,
                seed: 4,
                ..AltParams::default()
            },
        );
        assert_eq!(alt.landmarks().len(), 8);
    }
}
