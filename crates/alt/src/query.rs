//! A* query processing with the landmark potential.

use spq_graph::backend::QueryBudget;
use spq_graph::heap::IndexedHeap;
use spq_graph::types::{Dist, NodeId, INFINITY, INVALID_NODE};
use spq_graph::RoadNetwork;

use crate::landmarks::Alt;
use spq_dijkstra::SearchStats;

/// Reusable ALT query workspace: an A* search keyed by
/// `g(v) + h(v)` where `h` is the landmark lower bound toward `t`.
pub struct AltQuery<'a> {
    alt: &'a Alt,
    net: &'a RoadNetwork,
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
    reached_stamp: Vec<u32>,
    settled_stamp: Vec<u32>,
    version: u32,
    heap: IndexedHeap,
    budget: QueryBudget,
    /// Statistics of the most recent query.
    pub stats: SearchStats,
}

impl<'a> AltQuery<'a> {
    /// Creates a workspace over the index and its network.
    pub fn new(alt: &'a Alt, net: &'a RoadNetwork) -> Self {
        assert_eq!(alt.num_nodes(), net.num_nodes(), "index/network mismatch");
        let n = net.num_nodes();
        AltQuery {
            alt,
            net,
            dist: vec![INFINITY; n],
            parent: vec![INVALID_NODE; n],
            reached_stamp: vec![0; n],
            settled_stamp: vec![0; n],
            version: 0,
            heap: IndexedHeap::new(n),
            budget: QueryBudget::unlimited(),
            stats: SearchStats::default(),
        }
    }

    /// Installs the cancellation budget subsequent queries run under
    /// (one charge per settled vertex). The default is unlimited.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// Whether a query since the last [`AltQuery::set_budget`] was cut
    /// short by the budget (its `None` is an abort, not "unreachable").
    pub fn budget_exhausted(&self) -> bool {
        self.budget.exhausted()
    }

    /// Distance query: goal-directed A*, exact because the potential is
    /// consistent.
    pub fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.search(s, t)
    }

    /// Shortest-path query: the A* tree gives the path directly.
    pub fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        let d = self.search(s, t)?;
        let mut path = vec![t];
        let mut cur = t;
        while cur != s {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some((d, path))
    }

    fn search(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        self.version = self.version.wrapping_add(1);
        if self.version == 0 {
            self.reached_stamp.fill(0);
            self.settled_stamp.fill(0);
            self.version = 1;
        }
        let version = self.version;
        self.stats = SearchStats::default();
        self.heap.clear();
        self.dist[s as usize] = 0;
        self.parent[s as usize] = INVALID_NODE;
        self.reached_stamp[s as usize] = version;
        self.heap.push_or_decrease(s, self.alt.lower_bound(s, t));

        while let Some((_, u)) = self.heap.pop_min() {
            if self.settled_stamp[u as usize] == version {
                continue;
            }
            if !self.budget.charge() {
                return None;
            }
            self.settled_stamp[u as usize] = version;
            self.stats.settled += 1;
            if u == t {
                return Some(self.dist[u as usize]);
            }
            let du = self.dist[u as usize];
            for (v, w) in self.net.neighbors(u) {
                self.stats.relaxed += 1;
                let nd = du + w as Dist;
                let vi = v as usize;
                if self.reached_stamp[vi] != version || nd < self.dist[vi] {
                    self.dist[vi] = nd;
                    self.parent[vi] = u;
                    self.reached_stamp[vi] = version;
                    self.heap
                        .push_or_decrease(v, nd + self.alt.lower_bound(v, t));
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// spq-serve integration: ALT behind the unified backend interface.

impl spq_graph::backend::Backend for Alt {
    fn backend_name(&self) -> &'static str {
        "ALT"
    }

    fn session<'a>(&'a self, net: &'a RoadNetwork) -> Box<dyn spq_graph::backend::Session + 'a> {
        Box::new(self.query(net))
    }
}

impl spq_graph::backend::Session for AltQuery<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<Dist> {
        AltQuery::distance(self, s, t)
    }

    fn shortest_path(&mut self, s: NodeId, t: NodeId) -> Option<(Dist, Vec<NodeId>)> {
        AltQuery::shortest_path(self, s, t)
    }

    fn set_budget(&mut self, budget: QueryBudget) {
        AltQuery::set_budget(self, budget);
    }

    fn interrupted(&self) -> bool {
        self.budget_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::AltParams;
    use spq_dijkstra::Dijkstra;
    use spq_graph::toy::{figure1, grid_graph};

    #[test]
    fn figure1_all_pairs_exact() {
        let g = figure1();
        let alt = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 4,
                seed: 7,
                ..AltParams::default()
            },
        );
        let mut q = alt.query(&g);
        let mut d = Dijkstra::new(g.num_nodes());
        for s in 0..8u32 {
            d.run(&g, s);
            for t in 0..8u32 {
                assert_eq!(q.distance(s, t), d.distance(t), "({s},{t})");
                let (pd, path) = q.shortest_path(s, t).unwrap();
                assert_eq!(Some(pd), d.distance(t));
                assert_eq!(g.path_length(&path), d.distance(t));
            }
        }
    }

    #[test]
    fn synthetic_random_pairs_exact() {
        let net = spq_synth::generate(&spq_synth::SynthParams::with_target_vertices(900, 17));
        let alt = Alt::build(&net, &AltParams::default());
        let mut q = alt.query(&net);
        let mut d = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as u64;
        let mut state = 77u64;
        for _ in 0..80 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            let s = ((state >> 33) % n) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            let t = ((state >> 33) % n) as NodeId;
            d.run_to_target(&net, s, t);
            assert_eq!(q.distance(s, t), d.distance(t), "({s},{t})");
        }
    }

    #[test]
    fn goal_direction_shrinks_the_search() {
        let g = grid_graph(40, 40);
        let alt = Alt::build(
            &g,
            &AltParams {
                num_landmarks: 8,
                seed: 9,
                ..AltParams::default()
            },
        );
        let mut q = alt.query(&g);
        let mut d = Dijkstra::new(g.num_nodes());
        let (s, t) = (20u32 * 40 + 5, 20u32 * 40 + 35);
        q.distance(s, t);
        d.run_to_target(&g, s, t);
        assert!(
            q.stats.settled * 2 < d.stats.settled,
            "ALT settled {} vs Dijkstra {}",
            q.stats.settled,
            d.stats.settled
        );
    }

    #[test]
    fn trivial_query() {
        let g = figure1();
        let alt = Alt::build(&g, &AltParams::default());
        let mut q = alt.query(&g);
        assert_eq!(q.distance(3, 3), Some(0));
        assert_eq!(q.shortest_path(3, 3).unwrap().1, vec![3]);
    }
}
