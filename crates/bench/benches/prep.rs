//! Criterion bench: preprocessing cost per technique (Figure 6(b) in
//! microbench form). Small fixed network so `cargo bench` stays quick.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_synth::SynthParams;

fn bench_prep(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(10);
    for target in [500usize, 1500] {
        let net = spq_synth::generate(&SynthParams::with_target_vertices(target, 5));
        let n = net.num_nodes();
        group.bench_with_input(BenchmarkId::new("CH", n), &net, |b, net| {
            b.iter(|| spq_ch::ContractionHierarchy::build(net))
        });
        group.bench_with_input(BenchmarkId::new("TNR", n), &net, |b, net| {
            b.iter(|| spq_tnr::Tnr::build(net, &spq_tnr::TnrParams::default()))
        });
        group.bench_with_input(BenchmarkId::new("SILC", n), &net, |b, net| {
            b.iter(|| spq_silc::Silc::build(net))
        });
        if target <= 500 {
            group.bench_with_input(BenchmarkId::new("PCPD", n), &net, |b, net| {
                b.iter(|| spq_pcpd::Pcpd::build(net))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prep);
criterion_main!(benches);
