//! Criterion bench: the Appendix A techniques (ALT, Arc Flags) against
//! bidirectional Dijkstra and CH on one mid-size network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_alt::{Alt, AltParams};
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_ch::{ChQuery, ContractionHierarchy};
use spq_dijkstra::BiDijkstra;
use spq_graph::types::NodeId;
use spq_queries::{linf_query_sets, QueryGenParams};
use spq_synth::SynthParams;

fn bench_appendix_a(c: &mut Criterion) {
    let net = spq_synth::generate(&SynthParams::with_target_vertices(4000, 5));
    let sets = linf_query_sets(
        &net,
        &QueryGenParams {
            per_set: 128,
            ..QueryGenParams::default()
        },
    );
    let pairs: Vec<(NodeId, NodeId)> = sets[8].pairs.clone(); // far band
    assert!(!pairs.is_empty());

    let alt = Alt::build(&net, &AltParams::default());
    let af = ArcFlags::build(&net, &ArcFlagsParams::default());
    let ch = ContractionHierarchy::build(&net);

    let mut group = c.benchmark_group("appendix_a_distance");
    let mut bidi = BiDijkstra::new(net.num_nodes());
    group.bench_with_input(BenchmarkId::new("Dijkstra", "Q9"), &pairs, |b, pairs| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            bidi.distance(&net, s, t)
        })
    });
    let mut q = alt.query(&net);
    group.bench_with_input(BenchmarkId::new("ALT", "Q9"), &pairs, |b, pairs| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            q.distance(s, t)
        })
    });
    let mut q = af.query(&net);
    group.bench_with_input(BenchmarkId::new("ArcFlags", "Q9"), &pairs, |b, pairs| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            q.distance(s, t)
        })
    });
    let mut q = ChQuery::new(&ch);
    group.bench_with_input(BenchmarkId::new("CH", "Q9"), &pairs, |b, pairs| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            q.distance(s, t)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_appendix_a);
criterion_main!(benches);
