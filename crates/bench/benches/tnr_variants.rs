//! Criterion bench: the TNR variants of Appendix E.1 (grid × fallback ×
//! hybrid), microbench form of Figures 13–15.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_graph::types::NodeId;
use spq_queries::{linf_query_sets, QueryGenParams};
use spq_synth::SynthParams;
use spq_tnr::hybrid::HybridTnr;
use spq_tnr::{Fallback, Tnr, TnrParams};

fn bench_tnr_variants(c: &mut Criterion) {
    let net = spq_synth::generate(&SynthParams::with_target_vertices(4000, 5));
    let sets = linf_query_sets(
        &net,
        &QueryGenParams {
            per_set: 128,
            ..QueryGenParams::default()
        },
    );
    let base = TnrParams::default();
    let tnr_ch = Tnr::build(
        &net,
        &TnrParams {
            fallback: Fallback::Ch,
            ..base
        },
    );
    let tnr_dij = Tnr::build(
        &net,
        &TnrParams {
            fallback: Fallback::BiDijkstra,
            ..base
        },
    );
    let hybrid = HybridTnr::build(&net, &base);

    let mut group = c.benchmark_group("tnr_variants_distance");
    for (label, idx) in [("mid_Q6", 5usize), ("far_Q9", 8)] {
        let pairs: Vec<(NodeId, NodeId)> = sets[idx].pairs.clone();
        if pairs.is_empty() {
            continue;
        }
        let mut q = tnr_ch.query().with_network(&net);
        group.bench_with_input(BenchmarkId::new("grid_CH", label), &pairs, |b, pairs| {
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                q.distance(s, t)
            })
        });
        let mut q = tnr_dij.query().with_network(&net);
        group.bench_with_input(
            BenchmarkId::new("grid_Dijkstra", label),
            &pairs,
            |b, pairs| {
                let mut i = 0;
                b.iter(|| {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    q.distance(s, t)
                })
            },
        );
        let mut q = hybrid.query(&net);
        group.bench_with_input(BenchmarkId::new("hybrid_CH", label), &pairs, |b, pairs| {
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                q.distance(s, t)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tnr_variants);
criterion_main!(benches);
