//! Criterion bench: distance-query latency for all seven backends on
//! near (Q3) and far (Q9) workloads — the microbench form of Figures
//! 8/9/16, extended with ALT and arc flags.
//!
//! Every index is built exactly once and reused across the workloads;
//! queries go through the unified [`spq_graph::backend::Backend`]
//! session, the same code path `spq-serve` and `spq bench` measure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_alt::{Alt, AltParams};
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_ch::ContractionHierarchy;
use spq_dijkstra::Baseline;
use spq_graph::backend::Backend;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;
use spq_pcpd::Pcpd;
use spq_queries::{linf_query_sets, QueryGenParams};
use spq_silc::Silc;
use spq_synth::SynthParams;
use spq_tnr::{Tnr, TnrParams};

fn backends(net: &RoadNetwork) -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(Baseline),
        Box::new(ContractionHierarchy::build(net)),
        Box::new(Tnr::build(net, &TnrParams::default())),
        Box::new(Silc::build(net)),
        Box::new(Pcpd::build(net)),
        Box::new(Alt::build(
            net,
            &AltParams {
                num_landmarks: 16.min(net.num_nodes()),
                ..AltParams::default()
            },
        )),
        Box::new(ArcFlags::build(net, &ArcFlagsParams::default())),
    ]
}

fn bench_distance(c: &mut Criterion) {
    let target = spq_synth::test_vertices(4000);
    let net = spq_synth::generate(&SynthParams::with_target_vertices(target, 5));
    let sets = linf_query_sets(
        &net,
        &QueryGenParams {
            per_set: 256,
            ..QueryGenParams::default()
        },
    );
    let built = backends(&net);
    let mut group = c.benchmark_group("distance_query");
    for (label, idx) in [("near_Q3", 2usize), ("far_Q9", 8)] {
        let pairs: Vec<(NodeId, NodeId)> = sets[idx].pairs.clone();
        if pairs.is_empty() {
            continue;
        }
        for backend in &built {
            let mut session = backend.session(&net);
            group.bench_with_input(
                BenchmarkId::new(backend.backend_name(), label),
                &pairs,
                |b, pairs| {
                    let mut i = 0;
                    b.iter(|| {
                        let (s, t) = pairs[i % pairs.len()];
                        i += 1;
                        session.distance(s, t)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
