//! Criterion bench: distance-query latency per technique on near (Q3)
//! and far (Q9) workloads — the microbench form of Figures 8/9/16.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_core::{Index, Technique};
use spq_graph::types::NodeId;
use spq_queries::{linf_query_sets, QueryGenParams};
use spq_synth::SynthParams;

fn bench_distance(c: &mut Criterion) {
    let net = spq_synth::generate(&SynthParams::with_target_vertices(4000, 5));
    let sets = linf_query_sets(
        &net,
        &QueryGenParams {
            per_set: 256,
            ..QueryGenParams::default()
        },
    );
    let mut group = c.benchmark_group("distance_query");
    for (label, idx) in [("near_Q3", 2usize), ("far_Q9", 8)] {
        let pairs: Vec<(NodeId, NodeId)> = sets[idx].pairs.clone();
        if pairs.is_empty() {
            continue;
        }
        for technique in Technique::ALL {
            if technique == Technique::Pcpd {
                continue; // dominated by SILC and slow to build repeatedly
            }
            let (index, _) = Index::build(technique, &net);
            let mut q = index.query(&net);
            group.bench_with_input(
                BenchmarkId::new(technique.name(), label),
                &pairs,
                |b, pairs| {
                    let mut i = 0;
                    b.iter(|| {
                        let (s, t) = pairs[i % pairs.len()];
                        i += 1;
                        q.distance(s, t)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
