//! Criterion bench: the flat rank-renumbered CH query kernel against
//! the legacy CSR-walking kernel it replaced — distance, shortest-path
//! (shortcut unpacking), and the bucket-based many-to-many, all over
//! the same single CH build.
//!
//! This is the microbench behind the `ch` vs `ch_legacy` rows of
//! `spq bench --json`; run it with
//! `cargo bench -p spq-bench --bench ch_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_ch::{ChQuery, ContractionHierarchy, LegacyChQuery, ManyToMany};
use spq_graph::types::NodeId;
use spq_queries::{linf_query_sets, QueryGenParams};
use spq_synth::SynthParams;

fn bench_kernels(c: &mut Criterion) {
    let target = spq_synth::test_vertices(4000);
    let net = spq_synth::generate(&SynthParams::with_target_vertices(target, 5));
    let sets = linf_query_sets(
        &net,
        &QueryGenParams {
            per_set: 256,
            ..QueryGenParams::default()
        },
    );
    let pairs: Vec<(NodeId, NodeId)> = sets[8].pairs.clone(); // far (Q9): deepest searches
    assert!(!pairs.is_empty());
    let ch = ContractionHierarchy::build(&net);

    let mut group = c.benchmark_group("ch_kernels");
    for kernel in ["flat", "legacy"] {
        group.bench_with_input(BenchmarkId::new(kernel, "distance"), &pairs, |b, pairs| {
            let mut flat = ChQuery::new(&ch);
            let mut legacy = LegacyChQuery::new(&ch);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                match kernel {
                    "flat" => flat.distance(s, t),
                    _ => legacy.distance(s, t),
                }
            })
        });
        group.bench_with_input(BenchmarkId::new(kernel, "path"), &pairs, |b, pairs| {
            let mut flat = ChQuery::new(&ch);
            let mut legacy = LegacyChQuery::new(&ch);
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                match kernel {
                    "flat" => flat.shortest_path(s, t).map(|(_, p)| p.len()),
                    _ => legacy.shortest_path(s, t).map(|(_, p)| p.len()),
                }
            })
        });
    }

    let side = 24.min(net.num_nodes());
    let sources: Vec<NodeId> = pairs.iter().take(side).map(|&(s, _)| s).collect();
    let targets: Vec<NodeId> = pairs.iter().take(side).map(|&(_, t)| t).collect();
    group.bench_function("m2m/table_24x24", |b| {
        let mut m2m = ManyToMany::new(&ch);
        b.iter(|| m2m.table(&sources, &targets))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
