//! Criterion bench: substrate ablations called out in DESIGN.md — the
//! indexed heap, CH stall-on-demand on/off, witness settle limits, and
//! SILC colour lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_ch::ordering::PriorityWeights;
use spq_ch::{ChParams, ChQuery, ContractionHierarchy};
use spq_graph::heap::IndexedHeap;
use spq_synth::SynthParams;

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/heap");
    group.bench_function("push_pop_4096", |b| {
        let mut h: IndexedHeap = IndexedHeap::new(4096);
        b.iter(|| {
            h.clear();
            for v in 0..4096u32 {
                h.push_or_decrease(v, ((v as u64).wrapping_mul(2654435761)) % 100_000);
            }
            let mut acc = 0u64;
            while let Some((k, _)) = h.pop_min() {
                acc = acc.wrapping_add(k);
            }
            acc
        })
    });
    group.finish();
}

fn bench_ch_ablation(c: &mut Criterion) {
    let net = spq_synth::generate(&SynthParams::with_target_vertices(4000, 5));
    let mut group = c.benchmark_group("substrate/ch");
    group.sample_size(10);

    // Witness settle limit: build cost vs shortcut count.
    for limit in [8usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("build_witness_limit", limit),
            &limit,
            |b, &limit| {
                b.iter(|| {
                    ContractionHierarchy::build_with_params(
                        &net,
                        &ChParams {
                            witness_settle_limit: limit,
                            priority: PriorityWeights::default(),
                        },
                    )
                })
            },
        );
    }

    // Stall-on-demand on/off at query time.
    let ch = ContractionHierarchy::build(&net);
    let n = net.num_nodes() as u32;
    for stall in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("query_stall_on_demand", stall),
            &stall,
            |b, &stall| {
                let mut q = ChQuery::new(&ch);
                q.stall_on_demand = stall;
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let s = (i.wrapping_mul(2654435761)) % n;
                    let t = (i.wrapping_mul(40503).wrapping_add(12345)) % n;
                    q.distance(s, t)
                })
            },
        );
    }
    group.finish();
}

fn bench_alt_landmarks(c: &mut Criterion) {
    use spq_alt::{Alt, AltParams, LandmarkSelection};
    let net = spq_synth::generate(&SynthParams::with_target_vertices(4000, 5));
    let mut group = c.benchmark_group("substrate/alt_landmarks");
    let n = net.num_nodes() as u32;
    for (label, selection) in [
        ("farthest", LandmarkSelection::Farthest),
        ("random", LandmarkSelection::Random),
    ] {
        let alt = Alt::build(
            &net,
            &AltParams {
                num_landmarks: 16,
                selection,
                seed: 5,
            },
        );
        group.bench_with_input(BenchmarkId::new("query", label), &alt, |b, alt| {
            let mut q = alt.query(&net);
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                let s = (i.wrapping_mul(2654435761)) % n;
                let t = (i.wrapping_mul(40503).wrapping_add(12345)) % n;
                q.distance(s, t)
            })
        });
    }
    group.finish();
}

fn bench_silc_lookup(c: &mut Criterion) {
    let net = spq_synth::generate(&SynthParams::with_target_vertices(2000, 5));
    let silc = spq_silc::Silc::build(&net);
    let mut q = silc.query(&net);
    let n = net.num_nodes() as u32;
    let mut group = c.benchmark_group("substrate/silc");
    group.bench_function("path_walk", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let s = (i.wrapping_mul(2654435761)) % n;
            let t = (i.wrapping_mul(40503).wrapping_add(12345)) % n;
            q.shortest_path(s, t)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_heap,
    bench_ch_ablation,
    bench_alt_landmarks,
    bench_silc_lookup
);
criterion_main!(benches);
