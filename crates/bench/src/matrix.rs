//! Shared driver for the query-latency experiments (Figures 7–11 and
//! 16–17): datasets × query sets × techniques, measuring average query
//! latency in microseconds.

use spq_core::{Index, Technique};
use spq_queries::{linf_query_sets, network_query_sets, QuerySet};
use spq_synth::Dataset;

use crate::{build_dataset, subset, time_distance, time_path, Config, ResultTable};

/// Distance or shortest-path queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// §2 distance queries.
    Distance,
    /// §2 shortest-path queries.
    Path,
}

/// Which workload family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Q1..Q10 by L∞ distance (§4.2).
    Linf,
    /// R1..R10 by network distance (Appendix E.2).
    Network,
}

/// Per-technique inclusion rule.
#[derive(Debug, Clone, Copy)]
pub struct TechniquePlan {
    /// The technique.
    pub tech: Technique,
    /// Include on the first `dataset_cap` datasets of the run only
    /// (mirrors the paper's applicability boundaries).
    pub dataset_cap: usize,
    /// Cap on measured pairs per set (keeps the slow baseline from
    /// dominating wall-clock; the average is still over this subset).
    pub pair_limit: usize,
}

impl TechniquePlan {
    /// A plan with no caps.
    pub fn all(tech: Technique) -> Self {
        TechniquePlan {
            tech,
            dataset_cap: usize::MAX,
            pair_limit: usize::MAX,
        }
    }

    /// The paper's standard line-up for the main figures: the baseline
    /// (pair-capped), CH everywhere, TNR up to `tnr_cap` datasets, SILC
    /// on the four smallest.
    pub fn paper_lineup(include_dijkstra: bool, tnr_cap: usize) -> Vec<TechniquePlan> {
        let mut plans = Vec::new();
        if include_dijkstra {
            plans.push(TechniquePlan {
                tech: Technique::BiDijkstra,
                dataset_cap: usize::MAX,
                pair_limit: 60,
            });
        }
        plans.push(TechniquePlan::all(Technique::Ch));
        plans.push(TechniquePlan {
            tech: Technique::Tnr,
            dataset_cap: tnr_cap,
            pair_limit: usize::MAX,
        });
        plans.push(TechniquePlan {
            tech: Technique::Silc,
            dataset_cap: 4,
            pair_limit: usize::MAX,
        });
        plans
    }
}

/// Runs the full matrix and returns the populated table with columns
/// `dataset, n, set, technique, micros_per_query`.
#[allow(clippy::too_many_arguments)]
pub fn run_query_experiment(
    id: &str,
    cfg: &Config,
    datasets: &[&Dataset],
    set_indices: &[usize],
    workload: Workload,
    kind: QueryKind,
    plans: &[TechniquePlan],
) -> ResultTable {
    let mut table = ResultTable::new(
        id,
        &["dataset", "n", "set", "technique", "micros_per_query"],
    );
    for (pos, d) in datasets.iter().enumerate() {
        let net = build_dataset(d, cfg);
        let all_sets = generate(workload, &net, cfg);
        let sets: Vec<&QuerySet> = set_indices
            .iter()
            .map(|&i| &all_sets[i])
            .filter(|s| {
                if s.is_empty() {
                    eprintln!("  [{}] {} empty at this scale; skipped", d.name, s.label);
                }
                !s.is_empty()
            })
            .collect();
        for plan in plans {
            if pos >= plan.dataset_cap {
                continue;
            }
            let (index, build_time) = Index::build(plan.tech, &net);
            eprintln!(
                "  [{}] {} index ready in {:.2?}",
                d.name,
                plan.tech.name(),
                build_time
            );
            let mut q = index.query(&net);
            for set in &sets {
                let pairs = subset(&set.pairs, plan.pair_limit);
                let micros = match kind {
                    QueryKind::Distance => time_distance(&mut q, pairs),
                    QueryKind::Path => time_path(&mut q, pairs),
                };
                table.row(vec![
                    d.name.to_string(),
                    net.num_nodes().to_string(),
                    set.label.clone(),
                    plan.tech.name().to_string(),
                    ResultTable::f(micros),
                ]);
            }
        }
    }
    table
}

fn generate(workload: Workload, net: &spq_graph::RoadNetwork, cfg: &Config) -> Vec<QuerySet> {
    let params = cfg.query_params();
    match workload {
        Workload::Linf => linf_query_sets(net, &params),
        Workload::Network => network_query_sets(net, &params),
    }
}

/// All ten set indices.
pub const ALL_SETS: [usize; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

/// The four sets the paper's "vs n" figures plot (Q1, Q4, Q7, Q10).
pub const CORNER_SETS: [usize; 4] = [0, 3, 6, 9];
