//! Shared harness for the experiment binaries (one per table/figure of
//! the paper) and the Criterion benches.
//!
//! Every binary follows the same pattern: build the Table-1 datasets at
//! the configured scale, generate the paper's query sets, time each
//! technique, and print the same rows/series the paper's figure reports
//! (also appending CSV under `results/`).
//!
//! Environment knobs:
//!
//! * `SPQ_SCALE` — `smoke`, `paper` (default, 1/40), or a numeric
//!   divisor applied to Table 1's vertex counts.
//! * `SPQ_QUERIES` — pairs per query set (default 1000; the paper uses
//!   10000).
//! * `SPQ_MAX_DATASET` — last dataset to include (default per binary).
//! * `SPQ_SEED` — workload seed.
//! * `SPQ_THREADS` — preprocessing worker threads (default: all cores);
//!   parallel builds are byte-identical to sequential ones, so this only
//!   changes wall-clock. The `prep_speedup` binary sweeps it.

pub mod matrix;

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use spq_core::OracleQuery;
use spq_graph::types::NodeId;
use spq_graph::RoadNetwork;
use spq_queries::{QueryGenParams, QuerySet};
use spq_synth::{Dataset, Scale, DATASETS};

/// Harness configuration, read from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Dataset scale.
    pub scale: Scale,
    /// Pairs per query set.
    pub per_set: usize,
    /// Workload seed.
    pub seed: u64,
    /// Preprocessing worker threads (resolved from `SPQ_THREADS` /
    /// available parallelism by [`spq_graph::par::num_threads`]).
    pub threads: usize,
}

impl Config {
    /// Reads `SPQ_SCALE`, `SPQ_QUERIES`, `SPQ_SEED` and `SPQ_THREADS`.
    pub fn from_env() -> Config {
        let per_set = std::env::var("SPQ_QUERIES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1000);
        let seed = std::env::var("SPQ_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9e37_79b9);
        Config {
            scale: Scale::from_env(),
            per_set,
            seed,
            threads: spq_graph::par::num_threads(),
        }
    }

    /// Query-generation parameters at this configuration.
    pub fn query_params(&self) -> QueryGenParams {
        QueryGenParams {
            per_set: self.per_set,
            grid: 1024,
            seed: self.seed,
        }
    }
}

/// The Table-1 datasets up to and including `cap` (by name), overridable
/// with `SPQ_MAX_DATASET`.
pub fn datasets_up_to(cap: &str) -> Vec<&'static Dataset> {
    let cap = std::env::var("SPQ_MAX_DATASET").unwrap_or_else(|_| cap.to_string());
    let mut out = Vec::new();
    for d in &DATASETS {
        out.push(d);
        if d.name.eq_ignore_ascii_case(&cap) {
            break;
        }
    }
    out
}

/// Builds a dataset's network at the configured scale, announcing it.
pub fn build_dataset(d: &Dataset, cfg: &Config) -> RoadNetwork {
    let t0 = Instant::now();
    let net = d.build_with_seed(cfg.scale, cfg.seed);
    eprintln!(
        "[dataset {}] n = {}, m = {} ({}; generated in {:.2?})",
        d.name,
        net.num_nodes(),
        net.num_edges(),
        d.region,
        t0.elapsed()
    );
    net
}

/// Average distance-query latency in microseconds over the pairs.
pub fn time_distance(q: &mut OracleQuery<'_>, pairs: &[(NodeId, NodeId)]) -> f64 {
    assert!(!pairs.is_empty());
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &(s, t) in pairs {
        acc = acc.wrapping_add(q.distance(s, t).unwrap_or(0));
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    elapsed.as_secs_f64() * 1e6 / pairs.len() as f64
}

/// Average shortest-path-query latency in microseconds over the pairs.
pub fn time_path(q: &mut OracleQuery<'_>, pairs: &[(NodeId, NodeId)]) -> f64 {
    assert!(!pairs.is_empty());
    let t0 = Instant::now();
    let mut acc = 0usize;
    for &(s, t) in pairs {
        if let Some((_, path)) = q.shortest_path(s, t) {
            acc = acc.wrapping_add(path.len());
        }
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    elapsed.as_secs_f64() * 1e6 / pairs.len() as f64
}

/// Caps very slow baselines: time at most `limit` pairs and extrapolate
/// nothing (report the measured average). Keeps Dijkstra on large
/// datasets from dominating wall-clock.
pub fn subset(pairs: &[(NodeId, NodeId)], limit: usize) -> &[(NodeId, NodeId)] {
    &pairs[..pairs.len().min(limit)]
}

/// A result table accumulated row by row and emitted as both an aligned
/// text table and CSV.
pub struct ResultTable {
    /// Experiment id, e.g. "fig8".
    pub id: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with the given column headers.
    pub fn new(id: &str, headers: &[&str]) -> Self {
        ResultTable {
            id: id.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Formats a float cell.
    pub fn f(x: f64) -> String {
        if x >= 100.0 {
            format!("{x:.0}")
        } else if x >= 1.0 {
            format!("{x:.2}")
        } else {
            format!("{x:.3}")
        }
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        println!("{line}");
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ");
            }
            println!("{line}");
        }
    }

    /// Writes `results/<id>.csv` relative to the workspace root.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(&path, out)?;
        Ok(path)
    }

    /// Prints and writes, announcing the CSV location.
    pub fn finish(&self) {
        println!();
        self.print();
        match self.write_csv() {
            Ok(p) => println!("\n[written] {}", p.display()),
            Err(e) => eprintln!("could not write CSV: {e}"),
        }
    }
}

/// Keeps only non-empty query sets, warning about skipped ones.
pub fn non_empty(sets: Vec<QuerySet>) -> Vec<QuerySet> {
    sets.into_iter()
        .filter(|s| {
            if s.is_empty() {
                eprintln!(
                    "[warn] query set {} is empty at this scale; skipped",
                    s.label
                );
                false
            } else {
                true
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_up_to_caps_inclusively() {
        std::env::remove_var("SPQ_MAX_DATASET");
        let ds = datasets_up_to("ME");
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.last().unwrap().name, "ME");
        let all = datasets_up_to("US");
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn result_table_formats() {
        let mut t = ResultTable::new("test", &["a", "b"]);
        t.row(vec!["x".into(), ResultTable::f(1234.5)]);
        t.row(vec!["y".into(), ResultTable::f(0.123)]);
        assert_eq!(ResultTable::f(1234.6), "1235");
        assert_eq!(ResultTable::f(12.5), "12.50");
        assert_eq!(ResultTable::f(0.1234), "0.123");
        t.print();
    }

    #[test]
    fn config_defaults() {
        std::env::remove_var("SPQ_QUERIES");
        std::env::remove_var("SPQ_SEED");
        let cfg = Config::from_env();
        assert_eq!(cfg.per_set, 1000);
        assert_eq!(cfg.query_params().grid, 1024);
    }
}
