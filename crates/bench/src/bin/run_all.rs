//! Runs every experiment binary in sequence (the full reproduction).
//! Individual experiments can be run directly; this wrapper is what
//! regenerates all CSVs under `results/`.

use std::process::Command;

fn main() {
    let exes = [
        "table1_datasets",
        "verify_all",
        "fig6_space_preproc",
        "fig7_silc_vs_pcpd",
        "fig8_distance_vs_n",
        "fig9_distance_vs_qset",
        "fig10_path_vs_n",
        "fig11_path_vs_qset",
        "table2_delta",
        "appendix_a_alt",
        "appendix_b_defect",
        "fig13_tnr_variants_cost",
        "fig14_tnr_variants_distance",
        "fig15_tnr_variants_path",
        "fig16_distance_r",
        "fig17_path_r",
    ];
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("bin dir");
    for exe in exes {
        println!("\n=============================== {exe} ===============================");
        let status = Command::new(dir.join(exe))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exe}: {e}"));
        assert!(status.success(), "{exe} failed");
    }
    println!("\nall experiments complete; CSVs under results/.");
}
