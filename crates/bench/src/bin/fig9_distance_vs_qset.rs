//! Figure 9: distance-query time vs query set (Q1..Q10) on DE, CO, E-US
//! (and US with SPQ_MAX_DATASET=US) for CH, TNR and SILC.

use spq_bench::matrix::{run_query_experiment, QueryKind, TechniquePlan, Workload, ALL_SETS};
use spq_bench::Config;
use spq_core::Technique;
use spq_synth::Dataset;

fn main() {
    let cfg = Config::from_env();
    let wanted = std::env::var("SPQ_MAX_DATASET")
        .map(|cap| match cap.to_uppercase().as_str() {
            "US" | "C-US" | "W-US" => vec!["DE", "CO", "E-US", "US"],
            _ => vec!["DE", "CO", "E-US"],
        })
        .unwrap_or_else(|_| vec!["DE", "CO", "E-US"]);
    let datasets: Vec<&Dataset> = wanted
        .iter()
        .map(|n| Dataset::by_name(n).expect("registry name"))
        .collect();
    // SILC appears only on datasets within the paper's applicability
    // boundary (DE and CO of this selection).
    let plans = [
        TechniquePlan::all(Technique::Ch),
        TechniquePlan::all(Technique::Tnr),
        TechniquePlan {
            tech: Technique::Silc,
            dataset_cap: 2,
            pair_limit: usize::MAX,
        },
    ];
    let table = run_query_experiment(
        "fig9",
        &cfg,
        &datasets,
        &ALL_SETS,
        Workload::Linf,
        QueryKind::Distance,
        &plans,
    );
    table.finish();
    println!(
        "\nexpected shape (paper Fig. 9): SILC grows steadily with the set index;\n\
         CH roughly flat; TNR == CH on Q1..Q5 (fallback), dropping an order of\n\
         magnitude below CH from Q7 on."
    );
}
