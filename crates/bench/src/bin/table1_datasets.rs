//! Table 1: dataset characteristics — paper values beside the scaled
//! synthetic stand-ins actually built at the configured `SPQ_SCALE`.

use spq_bench::{build_dataset, datasets_up_to, Config, ResultTable};

fn main() {
    let cfg = Config::from_env();
    let mut table = ResultTable::new(
        "table1",
        &[
            "Name",
            "Region",
            "paper n",
            "paper m",
            "built n",
            "built m(arcs)",
            "avg degree",
        ],
    );
    for d in datasets_up_to("US") {
        let net = build_dataset(d, &cfg);
        table.row(vec![
            d.name.to_string(),
            d.region.to_string(),
            d.paper_vertices.to_string(),
            d.paper_edges.to_string(),
            net.num_nodes().to_string(),
            net.num_arcs().to_string(),
            format!("{:.2}", net.num_arcs() as f64 / net.num_nodes() as f64),
        ]);
    }
    table.finish();
}
