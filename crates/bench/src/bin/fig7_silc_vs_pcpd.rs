//! Figure 7: SILC vs PCPD shortest-path query time on the four smallest
//! datasets (DE, NH, ME, CO) across Q1..Q10.

use spq_bench::matrix::{run_query_experiment, QueryKind, TechniquePlan, Workload, ALL_SETS};
use spq_bench::{datasets_up_to, Config};
use spq_core::Technique;

fn main() {
    let cfg = Config::from_env();
    let datasets = datasets_up_to("CO");
    let plans = [
        TechniquePlan::all(Technique::Silc),
        TechniquePlan::all(Technique::Pcpd),
    ];
    let table = run_query_experiment(
        "fig7",
        &cfg,
        &datasets,
        &ALL_SETS,
        Workload::Linf,
        QueryKind::Path,
        &plans,
    );
    table.finish();
    println!(
        "\nexpected shape (paper Fig. 7): SILC consistently outperforms PCPD on\n\
         every set and dataset (square-containment lookups beat pair-coverage\n\
         lookups), with both growing in the set index."
    );
}
