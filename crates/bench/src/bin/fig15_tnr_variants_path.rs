//! Figure 15: shortest-path-query time of the TNR variants across
//! Q1..Q10 (Appendix E.1).

use spq_bench::{build_dataset, subset, Config, ResultTable};
use spq_graph::types::NodeId;
use spq_queries::linf_query_sets;
use spq_synth::Dataset;
use spq_tnr::hybrid::HybridTnr;
use spq_tnr::{Fallback, Tnr, TnrParams};
use std::time::Instant;

fn measure(
    mut f: impl FnMut(NodeId, NodeId) -> Option<(u64, Vec<NodeId>)>,
    pairs: &[(NodeId, NodeId)],
) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0usize;
    for &(s, t) in pairs {
        if let Some((_, p)) = f(s, t) {
            acc = acc.wrapping_add(p.len());
        }
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64
}

fn main() {
    let cfg = Config::from_env();
    let mut table = ResultTable::new(
        "fig15",
        &["dataset", "n", "set", "variant", "micros_per_query"],
    );
    for name in ["DE", "CO"] {
        let d = Dataset::by_name(name).unwrap();
        let net = build_dataset(d, &cfg);
        let sets = linf_query_sets(&net, &cfg.query_params());
        let base = TnrParams::default();
        let variants: Vec<(String, Tnr)> = vec![
            (
                format!("{0}x{0} (CH)", base.grid),
                Tnr::build(
                    &net,
                    &TnrParams {
                        fallback: Fallback::Ch,
                        ..base
                    },
                ),
            ),
            (
                format!("{0}x{0} (Dijkstra)", base.grid),
                Tnr::build(
                    &net,
                    &TnrParams {
                        fallback: Fallback::BiDijkstra,
                        ..base
                    },
                ),
            ),
        ];
        let hybrids: Vec<(String, HybridTnr)> = vec![
            (
                "hybrid (CH)".to_string(),
                HybridTnr::build(
                    &net,
                    &TnrParams {
                        fallback: Fallback::Ch,
                        ..base
                    },
                ),
            ),
            (
                "hybrid (Dijkstra)".to_string(),
                HybridTnr::build(
                    &net,
                    &TnrParams {
                        fallback: Fallback::BiDijkstra,
                        ..base
                    },
                ),
            ),
        ];
        for set in sets.iter().filter(|s| !s.is_empty()) {
            for (label, tnr) in &variants {
                let limit = if label.contains("Dijkstra") { 60 } else { 400 };
                let pairs = subset(&set.pairs, limit);
                let mut q = tnr.query().with_network(&net);
                let micros = measure(|s, t| q.shortest_path(s, t), pairs);
                table.row(vec![
                    d.name.to_string(),
                    net.num_nodes().to_string(),
                    set.label.clone(),
                    label.clone(),
                    ResultTable::f(micros),
                ]);
            }
            for (label, hybrid) in &hybrids {
                let limit = if label.contains("Dijkstra") { 60 } else { 400 };
                let pairs = subset(&set.pairs, limit);
                let mut q = hybrid.query(&net);
                let micros = measure(|s, t| q.shortest_path(s, t), pairs);
                table.row(vec![
                    d.name.to_string(),
                    net.num_nodes().to_string(),
                    set.label.clone(),
                    label.clone(),
                    ResultTable::f(micros),
                ]);
            }
        }
    }
    table.finish();
    println!("\nexpected: qualitatively similar to Figure 14 (paper App. E.1).");
}
