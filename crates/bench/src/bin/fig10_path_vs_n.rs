//! Figure 10: shortest-path-query time vs n on Q1, Q4, Q7, Q10.

use spq_bench::matrix::{run_query_experiment, QueryKind, TechniquePlan, Workload, CORNER_SETS};
use spq_bench::{datasets_up_to, Config};

fn main() {
    let cfg = Config::from_env();
    let datasets = datasets_up_to("E-US");
    let tnr_cap = datasets.len();
    let plans = TechniquePlan::paper_lineup(true, tnr_cap);
    let table = run_query_experiment(
        "fig10",
        &cfg,
        &datasets,
        &CORNER_SETS,
        Workload::Linf,
        QueryKind::Path,
        &plans,
    );
    table.finish();
    println!(
        "\nexpected shape (paper Fig. 10): SILC fastest on the small datasets;\n\
         CH slower than for distance queries (shortcut unpacking); TNR never\n\
         better than CH, and increasingly worse from Q7 to Q10."
    );
}
