//! Figure 13: space and preprocessing of the TNR grid variants — the
//! scaled analogues of the paper's D128 (here g), D256 (2g) and the
//! hybrid combination (Appendix E.1).

use std::time::Instant;

use spq_bench::{build_dataset, datasets_up_to, Config, ResultTable};
use spq_graph::size::IndexSize;
use spq_tnr::hybrid::HybridTnr;
use spq_tnr::{Tnr, TnrParams};

fn main() {
    let cfg = Config::from_env();
    let mut table = ResultTable::new(
        "fig13",
        &[
            "dataset",
            "n",
            "variant",
            "space_mb",
            "preprocessing_sec",
            "access_nodes",
        ],
    );
    for d in datasets_up_to("CA") {
        let net = build_dataset(d, &cfg);
        let base = TnrParams::default();

        let t0 = Instant::now();
        let coarse = Tnr::build(&net, &base);
        let t_coarse = t0.elapsed();

        let t0 = Instant::now();
        let fine = Tnr::build(
            &net,
            &TnrParams {
                grid: base.grid * 2,
                ..base
            },
        );
        let t_fine = t0.elapsed();

        let t0 = Instant::now();
        let hybrid = HybridTnr::build(&net, &base);
        let t_hybrid = t0.elapsed();

        for (variant, mb, secs, access) in [
            (
                format!("{0}x{0}", base.grid),
                coarse.index_size_bytes() as f64 / 1048576.0,
                t_coarse.as_secs_f64(),
                coarse.num_access_nodes(),
            ),
            (
                format!("{0}x{0}", base.grid * 2),
                fine.index_size_bytes() as f64 / 1048576.0,
                t_fine.as_secs_f64(),
                fine.num_access_nodes(),
            ),
            (
                "hybrid".to_string(),
                hybrid.index_size_bytes() as f64 / 1048576.0,
                t_hybrid.as_secs_f64(),
                hybrid.num_fine_access_nodes(),
            ),
        ] {
            table.row(vec![
                d.name.to_string(),
                net.num_nodes().to_string(),
                variant,
                ResultTable::f(mb),
                ResultTable::f(secs),
                access.to_string(),
            ]);
        }
    }
    table.finish();
    println!(
        "\nexpected shape (paper Fig. 13): space coarse < hybrid < fine;\n\
         preprocessing coarse < fine < hybrid (the hybrid processes both grids)."
    );
}
