//! Figure 6: (a) index space consumption and (b) preprocessing time of
//! CH, TNR, SILC and PCPD as functions of n.
//!
//! Matches the paper's applicability pattern: SILC and PCPD are built
//! only on the four smallest datasets (their all-pairs preprocessing and
//! index size rule out the rest — at paper scale they exceed the 24 GB
//! memory ceiling beyond CO, §4.3); TNR runs up to `SPQ_MAX_DATASET`
//! (default E-US at the default scale), CH on everything.

use spq_bench::{build_dataset, datasets_up_to, Config, ResultTable};
use spq_core::{Index, Technique};

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "[config] preprocessing with {} worker thread(s)",
        cfg.threads
    );
    let mut table = ResultTable::new(
        "fig6",
        &["dataset", "n", "technique", "space_mb", "preprocessing_sec"],
    );
    let tnr_cap = datasets_up_to("E-US").len();
    let silc_cap = datasets_up_to("CO").len().min(4);
    for (pos, d) in datasets_up_to("US").iter().enumerate() {
        let net = build_dataset(d, &cfg);
        let mut techniques = vec![Technique::Ch];
        if pos < tnr_cap {
            techniques.push(Technique::Tnr);
        }
        if pos < silc_cap {
            techniques.push(Technique::Silc);
            techniques.push(Technique::Pcpd);
        }
        for technique in techniques {
            let (index, elapsed) = Index::build(technique, &net);
            let mb = index.size_bytes() as f64 / (1024.0 * 1024.0);
            eprintln!(
                "  {} on {}: {:.2} MB, {:.2?}",
                technique.name(),
                d.name,
                mb,
                elapsed
            );
            table.row(vec![
                d.name.to_string(),
                net.num_nodes().to_string(),
                technique.name().to_string(),
                ResultTable::f(mb),
                ResultTable::f(elapsed.as_secs_f64()),
            ]);
        }
    }
    table.finish();
    println!(
        "\nexpected shape (paper Fig. 6): CH smallest space & fastest preprocessing;\n\
         TNR several times larger/slower; SILC/PCPD orders of magnitude above both\n\
         and absent beyond the four smallest datasets."
    );
}
