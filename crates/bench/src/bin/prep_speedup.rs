//! Parallel-preprocessing speedup: builds each parallelised index at
//! 1 worker thread and at the configured count (`SPQ_THREADS`, default
//! all cores) on synthetic Table-1 proxy networks and reports the ratio.
//!
//! Parallel builds are byte-identical to sequential ones (see
//! `tests/determinism.rs`), so this sweep measures pure wall-clock
//! effect. Expect near-linear scaling for SILC and Arc Flags (per-source
//! sweeps dominate), sub-linear for CH (only the initial ordering is
//! parallel) and TNR (cell sizes are skewed).

use std::time::Instant;

use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_bench::{build_dataset, datasets_up_to, Config, ResultTable};
use spq_ch::ContractionHierarchy;
use spq_graph::par;
use spq_graph::RoadNetwork;
use spq_silc::Silc;
use spq_tnr::{Tnr, TnrParams};

type Build = Box<dyn Fn(&RoadNetwork)>;

fn timed(threads: usize, build: impl Fn()) -> f64 {
    let t0 = Instant::now();
    par::with_threads(threads, &build);
    t0.elapsed().as_secs_f64()
}

fn main() {
    let cfg = Config::from_env();
    let threads = cfg.threads.max(1);
    eprintln!("[config] comparing 1 vs {threads} worker thread(s)");
    let mut table = ResultTable::new(
        "prep_speedup",
        &[
            "dataset",
            "n",
            "technique",
            "sec_1thread",
            "sec_parallel",
            "speedup",
        ],
    );
    let builds: Vec<(&str, Build)> = vec![
        (
            "CH",
            Box::new(|net: &RoadNetwork| {
                std::hint::black_box(ContractionHierarchy::build(net));
            }),
        ),
        (
            "TNR",
            Box::new(|net: &RoadNetwork| {
                std::hint::black_box(Tnr::build(net, &TnrParams::default()));
            }),
        ),
        (
            "SILC",
            Box::new(|net: &RoadNetwork| {
                std::hint::black_box(Silc::build(net));
            }),
        ),
        (
            "ArcFlags",
            Box::new(|net: &RoadNetwork| {
                std::hint::black_box(ArcFlags::build(net, &ArcFlagsParams::default()));
            }),
        ),
    ];
    for d in datasets_up_to("ME") {
        let net = build_dataset(d, &cfg);
        for (name, build) in &builds {
            let seq = timed(1, || build(&net));
            let par_t = timed(threads, || build(&net));
            eprintln!(
                "  {name} on {}: {seq:.2}s sequential, {par_t:.2}s at {threads} threads",
                d.name
            );
            table.row(vec![
                d.name.to_string(),
                net.num_nodes().to_string(),
                name.to_string(),
                ResultTable::f(seq),
                ResultTable::f(par_t),
                ResultTable::f(seq / par_t.max(1e-9)),
            ]);
        }
    }
    table.finish();
}
