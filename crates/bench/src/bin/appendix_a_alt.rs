//! Appendix A: the surveyed techniques ALT and Arc Flags versus Dijkstra
//! and CH. The paper notes all the surveyed methods (ALT, RE, Arc Flags,
//! Highway Hierarchies) were "previously shown to be inferior to CH in
//! terms of both space overhead and query performance" — this binary
//! verifies that claim for the two we implement.

use std::time::Instant;

use spq_alt::{Alt, AltParams};
use spq_arcflags::{ArcFlags, ArcFlagsParams};
use spq_bench::{build_dataset, datasets_up_to, subset, Config, ResultTable};
use spq_ch::{ChQuery, ContractionHierarchy};
use spq_dijkstra::BiDijkstra;
use spq_graph::size::IndexSize;
use spq_queries::linf_query_sets;

fn main() {
    let cfg = Config::from_env();
    let mut table = ResultTable::new(
        "appendix_a",
        &[
            "dataset",
            "n",
            "technique",
            "space_mb",
            "prep_sec",
            "Q5_us",
            "Q9_us",
        ],
    );
    for d in datasets_up_to("CO") {
        let net = build_dataset(d, &cfg);
        let sets = linf_query_sets(&net, &cfg.query_params());
        let q5 = subset(&sets[4].pairs, 400);
        let q9 = subset(&sets[8].pairs, 400);
        if q5.is_empty() || q9.is_empty() {
            eprintln!("  [{}] bands empty; skipped", d.name);
            continue;
        }

        // Bidirectional Dijkstra (no index).
        let mut bidi = BiDijkstra::new(net.num_nodes());
        let time = |f: &mut dyn FnMut(u32, u32) -> Option<u64>, pairs: &[(u32, u32)]| {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for &(s, t) in pairs {
                acc = acc.wrapping_add(f(s, t).unwrap_or(0));
            }
            std::hint::black_box(acc);
            t0.elapsed().as_secs_f64() * 1e6 / pairs.len() as f64
        };
        let us5 = time(&mut |s, t| bidi.distance(&net, s, t), q5);
        let us9 = time(&mut |s, t| bidi.distance(&net, s, t), q9);
        table.row(vec![
            d.name.into(),
            net.num_nodes().to_string(),
            "Dijkstra".into(),
            "0".into(),
            "0".into(),
            ResultTable::f(us5),
            ResultTable::f(us9),
        ]);

        // ALT.
        let t0 = Instant::now();
        let alt = Alt::build(&net, &AltParams::default());
        let prep = t0.elapsed().as_secs_f64();
        let mut q = alt.query(&net);
        let us5 = time(&mut |s, t| q.distance(s, t), q5);
        let us9 = time(&mut |s, t| q.distance(s, t), q9);
        table.row(vec![
            d.name.into(),
            net.num_nodes().to_string(),
            "ALT".into(),
            ResultTable::f(alt.index_size_bytes() as f64 / 1048576.0),
            ResultTable::f(prep),
            ResultTable::f(us5),
            ResultTable::f(us9),
        ]);

        // Arc Flags.
        let t0 = Instant::now();
        let af = ArcFlags::build(&net, &ArcFlagsParams::default());
        let prep = t0.elapsed().as_secs_f64();
        let mut q = af.query(&net);
        let us5 = time(&mut |s, t| q.distance(s, t), q5);
        let us9 = time(&mut |s, t| q.distance(s, t), q9);
        table.row(vec![
            d.name.into(),
            net.num_nodes().to_string(),
            "ArcFlags".into(),
            ResultTable::f(af.index_size_bytes() as f64 / 1048576.0),
            ResultTable::f(prep),
            ResultTable::f(us5),
            ResultTable::f(us9),
        ]);

        // CH.
        let t0 = Instant::now();
        let ch = ContractionHierarchy::build(&net);
        let prep = t0.elapsed().as_secs_f64();
        let mut q = ChQuery::new(&ch);
        let us5 = time(&mut |s, t| q.distance(s, t), q5);
        let us9 = time(&mut |s, t| q.distance(s, t), q9);
        table.row(vec![
            d.name.into(),
            net.num_nodes().to_string(),
            "CH".into(),
            ResultTable::f(ch.index_size_bytes() as f64 / 1048576.0),
            ResultTable::f(prep),
            ResultTable::f(us5),
            ResultTable::f(us9),
        ]);
    }
    table.finish();
    println!(
        "\nexpected (paper App. A): ALT clearly beats plain Dijkstra but loses to\n\
         CH on both query time and space."
    );
}
