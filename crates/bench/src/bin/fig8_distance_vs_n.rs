//! Figure 8: distance-query time vs n on query sets Q1, Q4, Q7, Q10 for
//! bidirectional Dijkstra, CH, TNR and SILC.

use spq_bench::matrix::{run_query_experiment, QueryKind, TechniquePlan, Workload, CORNER_SETS};
use spq_bench::{datasets_up_to, Config};

fn main() {
    let cfg = Config::from_env();
    let datasets = datasets_up_to("E-US");
    let tnr_cap = datasets.len();
    let plans = TechniquePlan::paper_lineup(true, tnr_cap);
    let table = run_query_experiment(
        "fig8",
        &cfg,
        &datasets,
        &CORNER_SETS,
        Workload::Linf,
        QueryKind::Distance,
        &plans,
    );
    table.finish();
    println!(
        "\nexpected shape (paper Fig. 8): Dijkstra orders of magnitude slower;\n\
         SILC competitive on Q1 for the small datasets; CH/TNR/SILC similar on Q4;\n\
         TNR ~10x faster than CH on Q7/Q10."
    );
}
