//! Table 2: the observed upper bound on δ (length of the shortest
//! core-disjoint path over the shortest path, minimised over the query
//! workload) per dataset — the Appendix C explanation of PCPD's space
//! blow-up.

use spq_bench::{build_dataset, datasets_up_to, Config, ResultTable};
use spq_pcpd::delta::{pcpd_space_constant, DeltaMeter};
use spq_queries::linf_query_sets;

fn main() {
    let cfg = Config::from_env();
    let mut table = ResultTable::new(
        "table2",
        &[
            "dataset",
            "n",
            "pairs_measured",
            "min_ratio",
            "space_constant",
        ],
    );
    for d in datasets_up_to("E-US") {
        let net = build_dataset(d, &cfg);
        let sets = linf_query_sets(&net, &cfg.query_params());
        // Union over all ten sets, capped to keep the rerun affordable.
        let pairs: Vec<_> = sets
            .iter()
            .flat_map(|s| s.pairs.iter().copied().take(cfg.per_set / 10 + 10))
            .collect();
        let mut meter = DeltaMeter::new(&net);
        let min_ratio = meter.min_ratio(&pairs);
        let (ratio_s, const_s) = match min_ratio {
            Some(r) => (
                format!("{r:.5}"),
                if r > 1.0 {
                    format!("{:.1}", pcpd_space_constant(r))
                } else {
                    "inf".to_string()
                },
            ),
            None => ("no disjoint path".to_string(), "-".to_string()),
        };
        table.row(vec![
            d.name.to_string(),
            net.num_nodes().to_string(),
            pairs.len().to_string(),
            ratio_s,
            const_s,
        ]);
    }
    table.finish();
    println!(
        "\nexpected shape (paper Table 2): ratios equal or very close to 1 on\n\
         every dataset, so the (2 + 2/(δ-1))² constant in PCPD's space bound\n\
         is enormous — matching its poor practical space use."
    );
}
