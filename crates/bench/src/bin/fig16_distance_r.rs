//! Figure 16: distance-query time vs n on the network-distance query
//! sets R1, R4, R7, R10 (Appendix E.2).

use spq_bench::matrix::{run_query_experiment, QueryKind, TechniquePlan, Workload, CORNER_SETS};
use spq_bench::{datasets_up_to, Config};

fn main() {
    let cfg = Config::from_env();
    let datasets = datasets_up_to("E-US");
    let tnr_cap = datasets.len();
    let plans = TechniquePlan::paper_lineup(true, tnr_cap);
    let table = run_query_experiment(
        "fig16",
        &cfg,
        &datasets,
        &CORNER_SETS,
        Workload::Network,
        QueryKind::Distance,
        &plans,
    );
    table.finish();
    println!("\nexpected: qualitatively identical to Figure 8 (paper App. E.2).");
}
