//! Correctness certification: differential verification of every
//! technique against the Dijkstra baseline on sampled workloads — the
//! reproduction of the paper's own methodological point that a faulty
//! implementation invalidates published numbers (§1).
//!
//! Knobs (environment): `SPQ_SELFCHECK_QUERIES` overrides the sampled
//! queries per (dataset, technique) pair (default 200);
//! `SPQ_SELFCHECK_SEED` overrides the workload seed (default: the
//! bench config's seed), so a defect report can be reproduced exactly.

use std::process::ExitCode;

use spq_bench::{build_dataset, datasets_up_to, Config, ResultTable};
use spq_core::{verify_index, Index, Technique};

fn env_knob<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("{name}: cannot parse '{s}', aborting");
            std::process::exit(2);
        }),
        Err(_) => default,
    }
}

fn main() -> ExitCode {
    let cfg = Config::from_env();
    let samples: usize = env_knob("SPQ_SELFCHECK_QUERIES", 200);
    let seed: u64 = env_knob("SPQ_SELFCHECK_SEED", cfg.seed);
    let mut table = ResultTable::new(
        "verify",
        &["dataset", "n", "technique", "checked", "defects"],
    );
    let mut all_clean = true;
    for (pos, d) in datasets_up_to("ME").iter().enumerate() {
        let net = build_dataset(d, &cfg);
        for technique in Technique::ALL {
            if technique.needs_all_pairs() && pos >= 4 {
                continue;
            }
            let (index, _) = Index::build(technique, &net);
            let report = verify_index(&net, &index, samples, seed);
            if !report.is_clean() {
                all_clean = false;
                for defect in report.defects.iter().take(3) {
                    eprintln!("  [{}] {} DEFECT: {defect:?}", d.name, technique.name());
                }
            }
            table.row(vec![
                d.name.to_string(),
                net.num_nodes().to_string(),
                technique.name().to_string(),
                report.checked.to_string(),
                report.defects.len().to_string(),
            ]);
        }
    }
    table.finish();
    if !all_clean {
        // An explicit non-zero exit (not a panic) so CI and scripts can
        // gate on it even with panic=abort or --release quirks.
        eprintln!("differential verification found defects");
        return ExitCode::FAILURE;
    }
    println!("\nall techniques certified against the baseline.");
    ExitCode::SUCCESS
}
