//! Appendix B: the defect of Bast et al.'s access-node computation.
//! Builds TNR twice (corrected vs flawed access nodes) over networks
//! with shell-jumping "bridge" edges and counts wrong answers among
//! table-answerable queries.

use spq_bench::{Config, ResultTable};
use spq_dijkstra::Dijkstra;
use spq_graph::{GraphBuilder, NodeId};
use spq_synth::SynthParams;
use spq_tnr::{AccessNodeStrategy, Tnr, TnrParams};

/// Adds `count` long "bridge" edges (tunnels/flyovers) to a network —
/// edges spanning several TNR cells, the Figure 12(b) hazard.
fn with_bridges(params: &SynthParams, count: usize) -> spq_graph::RoadNetwork {
    let base = spq_synth::generate(params);
    let mut b = GraphBuilder::with_capacity(base.num_nodes(), base.num_edges() + count);
    for v in 0..base.num_nodes() as NodeId {
        b.add_node(base.coord(v));
    }
    for v in 0..base.num_nodes() as NodeId {
        for (u, w) in base.neighbors(v) {
            if v < u {
                b.add_edge(v, u, w);
            }
        }
    }
    let rect = base.bounding_rect();
    let span = rect.width().max(rect.height());
    let mut state = 0xb41d_6e5eu64;
    let mut added = 0;
    while added < count {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(23);
        let s = ((state >> 33) % base.num_nodes() as u64) as NodeId;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(23);
        let t = ((state >> 33) % base.num_nodes() as u64) as NodeId;
        let d = base.coord(s).linf(&base.coord(t)) as u64;
        // Span 1.5..3 cells of the default 32-grid.
        if s != t && d > span * 3 / 64 && d < span * 6 / 64 {
            // Fast enough to be used by shortest paths.
            b.add_edge(s, t, (d / 8).max(1) as u32);
            added += 1;
        }
    }
    b.build().expect("bridges keep the network connected")
}

fn main() {
    let cfg = Config::from_env();
    let mut table = ResultTable::new(
        "appendix_b",
        &[
            "bridges",
            "n",
            "access_correct",
            "access_flawed",
            "checked",
            "wrong_correct",
            "wrong_flawed",
        ],
    );
    for bridges in [0usize, 20, 60] {
        let net = with_bridges(&SynthParams::with_target_vertices(3_000, cfg.seed), bridges);
        let correct = Tnr::build(
            &net,
            &TnrParams {
                access: AccessNodeStrategy::Correct,
                ..TnrParams::default()
            },
        );
        let flawed = Tnr::build(
            &net,
            &TnrParams {
                access: AccessNodeStrategy::FlawedBast,
                ..TnrParams::default()
            },
        );
        let mut q_ok = correct.query().with_network(&net);
        let mut q_bad = flawed.query().with_network(&net);
        let mut reference = Dijkstra::new(net.num_nodes());
        let n = net.num_nodes() as u64;
        let mut state = cfg.seed;
        let mut checked = 0u32;
        let mut wrong_ok = 0u32;
        let mut wrong_bad = 0u32;
        for _ in 0..4_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(29);
            let s = ((state >> 33) % n) as NodeId;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(29);
            let t = ((state >> 33) % n) as NodeId;
            if !flawed.distance_applicable(s, t) {
                continue;
            }
            checked += 1;
            reference.run_to_target(&net, s, t);
            let truth = reference.distance(t);
            if q_ok.distance(s, t) != truth {
                wrong_ok += 1;
            }
            if q_bad.table_distance(s, t) != truth.unwrap_or(u64::MAX) {
                wrong_bad += 1;
            }
        }
        table.row(vec![
            bridges.to_string(),
            net.num_nodes().to_string(),
            correct.num_access_nodes().to_string(),
            flawed.num_access_nodes().to_string(),
            checked.to_string(),
            wrong_ok.to_string(),
            wrong_bad.to_string(),
        ]);
    }
    table.finish();
    println!(
        "\nexpected (paper App. B): the corrected method is always exact;\n\
         the flawed method loses access nodes once shell-jumping edges exist\n\
         and returns wrong distances."
    );
}
