//! Figure 11: shortest-path-query time vs query set on DE, CO, E-US
//! (and US with SPQ_MAX_DATASET=US).

use spq_bench::matrix::{run_query_experiment, QueryKind, TechniquePlan, Workload, ALL_SETS};
use spq_bench::Config;
use spq_core::Technique;
use spq_synth::Dataset;

fn main() {
    let cfg = Config::from_env();
    let wanted = std::env::var("SPQ_MAX_DATASET")
        .map(|cap| match cap.to_uppercase().as_str() {
            "US" | "C-US" | "W-US" => vec!["DE", "CO", "E-US", "US"],
            _ => vec!["DE", "CO", "E-US"],
        })
        .unwrap_or_else(|_| vec!["DE", "CO", "E-US"]);
    let datasets: Vec<&Dataset> = wanted
        .iter()
        .map(|n| Dataset::by_name(n).expect("registry name"))
        .collect();
    let plans = [
        TechniquePlan::all(Technique::Ch),
        TechniquePlan::all(Technique::Tnr),
        TechniquePlan {
            tech: Technique::Silc,
            dataset_cap: 2,
            pair_limit: usize::MAX,
        },
    ];
    let table = run_query_experiment(
        "fig11",
        &cfg,
        &datasets,
        &ALL_SETS,
        Workload::Linf,
        QueryKind::Path,
        &plans,
    );
    table.finish();
    println!(
        "\nexpected shape (paper Fig. 11): TNR == CH on the near sets, falling\n\
         behind CH on Q7..Q10 (each path step costs a table distance query);\n\
         SILC beats both where it fits."
    );
}
