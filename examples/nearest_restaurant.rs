//! The paper's §2 motivating scenario: "assume that a user has a list of
//! her favorite Italian restaurants, and she wants to identify the
//! restaurant that is closest to her working place q. She may issue a
//! distance query from q to each of the restaurants."
//!
//! Distance queries — not path queries — are the right tool here, and
//! this is where TNR shines (paper Figures 8–9): most restaurants are
//! far from q, so the tables answer in a few lookups.
//!
//! Run with: `cargo run --release -p spq-core --example nearest_restaurant`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spq_core::{Index, Technique};
use spq_synth::SynthParams;

fn main() {
    let net = spq_synth::generate(&SynthParams::with_target_vertices(8_000, 7));
    let n = net.num_nodes() as u32;
    let mut rng = StdRng::seed_from_u64(99);

    // The workplace and fifty candidate restaurants, scattered anywhere.
    let workplace = rng.random_range(0..n);
    let restaurants: Vec<u32> = (0..50).map(|_| rng.random_range(0..n)).collect();

    println!(
        "network: {} vertices; workplace = v{workplace}; {} candidate restaurants",
        net.num_nodes(),
        restaurants.len()
    );

    for technique in [Technique::BiDijkstra, Technique::Ch, Technique::Tnr] {
        let (index, prep) = Index::build(technique, &net);
        let mut q = index.query(&net);
        let t0 = Instant::now();
        let (best, dist) = restaurants
            .iter()
            .map(|&r| (r, q.distance(workplace, r).expect("connected")))
            .min_by_key(|&(_, d)| d)
            .expect("non-empty candidate list");
        let elapsed = t0.elapsed();
        println!(
            "{:<9} prep {:>9.3?} | 50 distance queries in {:>9.3?} ({:>8.2?}/query) -> nearest v{best} at distance {dist}",
            technique.name(),
            prep,
            elapsed,
            elapsed / restaurants.len() as u32,
        );
    }
}
