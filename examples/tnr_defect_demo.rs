//! Demonstrates the defect of Bast et al.'s TNR access-node computation
//! (paper Appendix B) on synthetic networks: the flawed variant misses
//! access nodes on shell-jumping edges, and the resulting index returns
//! *wrong distances*, while the paper's corrected method stays exact.
//!
//! Run with: `cargo run --release -p spq-core --example tnr_defect_demo`

use spq_dijkstra::Dijkstra;
use spq_graph::{GraphBuilder, NodeId};
use spq_synth::SynthParams;
use spq_tnr::{AccessNodeStrategy, Tnr, TnrParams};

/// Adds long "bridge" edges spanning 1.5–3 TNR cells — the exact failure
/// mode of Appendix B's Figure 12(b): an edge jumping from inside a
/// cell's inner shell to beyond its outer shell.
fn with_bridges(base: &spq_graph::RoadNetwork, count: usize) -> spq_graph::RoadNetwork {
    let mut b = GraphBuilder::with_capacity(base.num_nodes(), base.num_edges() + count);
    for v in 0..base.num_nodes() as NodeId {
        b.add_node(base.coord(v));
    }
    for v in 0..base.num_nodes() as NodeId {
        for (u, w) in base.neighbors(v) {
            if v < u {
                b.add_edge(v, u, w);
            }
        }
    }
    let rect = base.bounding_rect();
    let span = rect.width().max(rect.height());
    let mut state = 0xb41d_6e5eu64;
    let mut added = 0;
    while added < count {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(23);
        let s = ((state >> 33) % base.num_nodes() as u64) as NodeId;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(23);
        let t = ((state >> 33) % base.num_nodes() as u64) as NodeId;
        let d = base.coord(s).linf(&base.coord(t)) as u64;
        if s != t && d > span * 3 / 64 && d < span * 6 / 64 {
            b.add_edge(s, t, (d / 8).max(1) as u32);
            added += 1;
        }
    }
    b.build().expect("bridges keep the network connected")
}

fn main() {
    let base = spq_synth::generate(&SynthParams::with_target_vertices(3_000, 13));
    let net = with_bridges(&base, 40);
    println!(
        "network: {} vertices, {} edges",
        net.num_nodes(),
        net.num_edges()
    );

    let correct = Tnr::build(
        &net,
        &TnrParams {
            access: AccessNodeStrategy::Correct,
            ..TnrParams::default()
        },
    );
    let flawed = Tnr::build(
        &net,
        &TnrParams {
            access: AccessNodeStrategy::FlawedBast,
            ..TnrParams::default()
        },
    );
    println!(
        "access nodes: corrected = {}, flawed = {} (the flawed method finds fewer)",
        correct.num_access_nodes(),
        flawed.num_access_nodes()
    );

    let mut q_ok = correct.query().with_network(&net);
    let mut reference = Dijkstra::new(net.num_nodes());
    let n = net.num_nodes() as u64;
    let mut state = 0xabcdu64;
    let mut checked = 0u32;
    let mut flawed_wrong = 0u32;
    let mut corrected_wrong = 0u32;
    let mut worst: Option<(u32, u32, u64, u64)> = None;
    for _ in 0..3_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(5);
        let s = ((state >> 33) % n) as u32;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(5);
        let t = ((state >> 33) % n) as u32;
        // Compare only where TNR actually uses its tables.
        if !flawed.distance_applicable(s, t) {
            continue;
        }
        checked += 1;
        reference.run_to_target(&net, s, t);
        let truth = reference.distance(t).unwrap();
        if q_ok.distance(s, t) != Some(truth) {
            corrected_wrong += 1;
        }
        // Query the flawed index through its raw tables (no fallback
        // rescue), as Bast et al.'s implementation would.
        let mut q_bad = flawed.query().with_network(&net);
        let got = q_bad.table_distance(s, t);
        if got != truth {
            flawed_wrong += 1;
            if worst.map_or(true, |(_, _, g, tr)| {
                got.saturating_sub(tr) > g.saturating_sub(tr)
            }) {
                worst = Some((s, t, got, truth));
            }
        }
    }

    println!("table-answerable queries checked: {checked}");
    println!("corrected method wrong answers:   {corrected_wrong}");
    println!("flawed method wrong answers:      {flawed_wrong}");
    if let Some((s, t, got, truth)) = worst {
        println!("example: dist(v{s}, v{t}) = {truth}, flawed TNR returns {got}");
    }
    assert_eq!(corrected_wrong, 0, "the corrected method must be exact");
    if flawed_wrong > 0 {
        println!("\nthe flawed preprocessing produces incorrect results, as Appendix B predicts.");
    } else {
        println!("\nno corruption on this seed — add more bridges to trigger it.");
    }
}
