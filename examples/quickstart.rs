//! Quick start: build a synthetic road network, preprocess every
//! technique, and answer one query with each.
//!
//! Run with: `cargo run --release -p spq-core --example quickstart`

use spq_core::{Index, Technique};
use spq_graph::size::IndexSize;
use spq_synth::SynthParams;

fn main() {
    // A ~2,000-vertex network resembling a small state extract.
    let net = spq_synth::generate(&SynthParams::with_target_vertices(2_000, 42));
    println!(
        "network: {} vertices, {} edges, max degree {}",
        net.num_nodes(),
        net.num_edges(),
        net.max_degree()
    );
    let _ = &net as &dyn IndexSize; // the network itself reports its footprint

    let s = 0u32;
    let t = (net.num_nodes() - 1) as u32;

    for technique in Technique::ALL {
        let (index, elapsed) = Index::build(technique, &net);
        let mut q = index.query(&net);
        let d = q.distance(s, t).expect("connected network");
        let (pd, path) = q.shortest_path(s, t).expect("connected network");
        assert_eq!(d, pd);
        assert_eq!(net.path_length(&path), Some(pd), "path must be valid");
        println!(
            "{:<9} preprocessing {:>9.3?}  index {:>10} B  dist(s,t) = {:>7}  path = {} vertices",
            technique.name(),
            elapsed,
            index.size_bytes(),
            d,
            path.len()
        );
    }
    println!("all five techniques agree.");
}
