//! Reproduces the paper's §5 selection guidelines as a runnable advisor:
//! given a network and a workload mix, it measures each technique's
//! preprocessing time, space, and query latency, then prints a
//! recommendation following the paper's conclusions:
//!
//! * CH when both space and time efficiency matter;
//! * TNR(+CH) for distance-heavy workloads with far-apart endpoints;
//! * SILC for shortest-path-heavy workloads when space is no concern;
//! * PCPD — dominated by SILC, never recommended.
//!
//! Run with: `cargo run --release -p spq-core --example index_advisor`

use std::time::Instant;

use spq_core::{Index, Technique};
use spq_queries::{linf_query_sets, QueryGenParams};
use spq_synth::SynthParams;

fn main() {
    let net = spq_synth::generate(&SynthParams::with_target_vertices(5_000, 3));
    let sets = linf_query_sets(
        &net,
        &QueryGenParams {
            per_set: 300,
            ..QueryGenParams::default()
        },
    );
    // Workload: a near band, a mid band and a far band, mixed.
    let mut workload: Vec<(u32, u32)> = Vec::new();
    for set in [&sets[2], &sets[5], &sets[8]] {
        workload.extend(set.pairs.iter().take(200));
    }
    println!(
        "network: {} vertices; workload: {} queries across near/mid/far bands\n",
        net.num_nodes(),
        workload.len()
    );

    println!(
        "{:<9} {:>12} {:>12} {:>16} {:>16}",
        "technique", "prep (ms)", "index (MB)", "distance (µs)", "path (µs)"
    );
    let mut rows = Vec::new();
    for technique in Technique::ALL {
        let (index, prep) = Index::build(technique, &net);
        let mut q = index.query(&net);

        let t0 = Instant::now();
        for &(s, t) in &workload {
            let _ = q.distance(s, t);
        }
        let dist_us = t0.elapsed().as_secs_f64() * 1e6 / workload.len() as f64;

        let t0 = Instant::now();
        for &(s, t) in &workload {
            let _ = q.shortest_path(s, t);
        }
        let path_us = t0.elapsed().as_secs_f64() * 1e6 / workload.len() as f64;

        let mb = index.size_bytes() as f64 / (1024.0 * 1024.0);
        println!(
            "{:<9} {:>12.1} {:>12.2} {:>16.2} {:>16.2}",
            technique.name(),
            prep.as_secs_f64() * 1e3,
            mb,
            dist_us,
            path_us
        );
        rows.push((technique, mb, dist_us, path_us));
    }

    // The paper's guidance, applied to the measurements.
    println!("\nadvice (per the paper's conclusions):");
    println!("  balanced space/time ................ CH");
    let tnr = rows.iter().find(|r| r.0 == Technique::Tnr).unwrap();
    let ch = rows.iter().find(|r| r.0 == Technique::Ch).unwrap();
    if tnr.2 < ch.2 {
        println!(
            "  distance-query heavy, far pairs .... TNR (measured {:.2}µs vs CH {:.2}µs)",
            tnr.2, ch.2
        );
    } else {
        println!("  distance-query heavy ............... CH (TNR gains need farther pairs)");
    }
    let silc = rows.iter().find(|r| r.0 == Technique::Silc).unwrap();
    println!(
        "  path-query heavy, space-rich ....... SILC (measured {:.2}µs/path at {:.1} MB)",
        silc.3, silc.1
    );
    println!("  PCPD ............................... dominated by SILC; not recommended");
}
